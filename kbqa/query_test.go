package kbqa

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// equivalenceQuestions is the full eval equivalence suite: every training
// corpus question plus composed complex questions.
func equivalenceQuestions(s *System) []string {
	qs := make([]string, 0, len(s.world.Pairs)+20)
	seen := make(map[string]bool)
	for _, p := range s.world.Pairs {
		if !seen[p.Q] {
			seen[p.Q] = true
			qs = append(qs, p.Q)
		}
	}
	for _, cq := range s.ComplexQuestions(17, 20) {
		qs = append(qs, cq.Q)
	}
	return qs
}

// TestQueryTopK1MatchesAsk is the acceptance gate of the API redesign:
// with K=1 the Result's answer must be byte-identical to the pre-redesign
// Ask answer (the raw engine argmax) over the full equivalence suite, and
// the unanswerable set must map exactly onto typed errors.
func TestQueryTopK1MatchesAsk(t *testing.T) {
	s := testSystem(t)
	ctx := context.Background()
	answered := 0
	for _, q := range equivalenceQuestions(s) {
		legacy, legacyOK := s.world.Engine.Answer(q) // the old Ask, verbatim
		res, err := s.Query(ctx, q, WithTopK(1), WithoutVariants())
		if legacyOK != (err == nil) {
			t.Fatalf("answerability diverges for %q: legacy %v, Query err %v", q, legacyOK, err)
		}
		if !legacyOK {
			if !IsUnanswerable(err) {
				t.Fatalf("unanswerable %q maps to non-typed error %v", q, err)
			}
			continue
		}
		answered++
		want := answerFromCore(legacy)
		if res.Answer == nil || !reflect.DeepEqual(*res.Answer, want) {
			t.Fatalf("answer diverges for %q:\n  legacy: %+v\n  query:  %+v", q, want, res.Answer)
		}
		if len(res.Interpretations) != 1 {
			t.Fatalf("WithTopK(1) returned %d interpretations for %q", len(res.Interpretations), q)
		}
	}
	if answered == 0 {
		t.Fatal("equivalence suite answered nothing")
	}
	t.Logf("K=1 byte-identical on %d answered questions", answered)
}

func TestQueryTopKRanking(t *testing.T) {
	s := testSystem(t)
	q := s.SampleQuestions(1)[0]
	res, err := s.Query(context.Background(), q, WithTopK(5))
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	if res.Answer == nil || res.Variant != nil {
		t.Fatalf("BFQ routed wrong: %+v", res)
	}
	if len(res.Interpretations) == 0 || len(res.Interpretations) > 5 {
		t.Fatalf("got %d interpretations, want 1..5", len(res.Interpretations))
	}
	for i := 1; i < len(res.Interpretations); i++ {
		if res.Interpretations[i].Score > res.Interpretations[i-1].Score {
			t.Fatalf("interpretations not sorted by score: %+v", res.Interpretations)
		}
	}
	if res.Timings.Total <= 0 {
		t.Errorf("timings missing: %+v", res.Timings)
	}

	// Default K applies without options; K=0 disables ranking.
	if res, err := s.Query(context.Background(), q); err != nil || len(res.Interpretations) == 0 {
		t.Errorf("default Query lost interpretations: %v, %+v", err, res)
	}
	if res, err := s.Query(context.Background(), q, WithTopK(0)); err != nil || len(res.Interpretations) != 0 {
		t.Errorf("WithTopK(0) still ranked: %v, %+v", err, res)
	}
}

func TestQueryVariantAutoRouting(t *testing.T) {
	s := testSystem(t)
	ctx := context.Background()
	res, err := s.Query(ctx, "Which city has the largest population?")
	if err != nil {
		t.Fatalf("variant query: %v", err)
	}
	if res.Variant == nil || res.Answer != nil {
		t.Fatalf("variant not routed: %+v", res)
	}
	if res.Variant.Kind != "ranking" || res.Variant.Predicate != "population" {
		t.Fatalf("variant = %+v", res.Variant)
	}
	// Same question with variants disabled falls through to the BFQ
	// pipeline (and typically fails typed).
	if res, err := s.Query(ctx, "Which city has the largest population?", WithoutVariants()); err == nil && res.Variant != nil {
		t.Fatalf("WithoutVariants still routed a variant: %+v", res)
	}
	// The deprecated shim agrees with the auto-routed result.
	va, ok := s.AskVariant("Which city has the largest population?")
	if !ok || !reflect.DeepEqual(va, *res.Variant) {
		t.Errorf("AskVariant diverges from Query: %+v vs %+v", va, res.Variant)
	}
}

func TestQueryTypedErrors(t *testing.T) {
	s := testSystem(t)
	ctx := context.Background()
	if _, err := s.Query(ctx, "why is the sky blue at noon"); !errors.Is(err, ErrNoEntity) {
		t.Errorf("err = %v, want ErrNoEntity", err)
	}
	if code := ErrorCode(ErrNoEntity); code != "no_entity" {
		t.Errorf("ErrorCode(ErrNoEntity) = %q", code)
	}
	if code := ErrorCode(ErrNoTemplate); code != "no_template" {
		t.Errorf("ErrorCode(ErrNoTemplate) = %q", code)
	}
	if code := ErrorCode(ErrNoAnswer); code != "no_answer" {
		t.Errorf("ErrorCode(ErrNoAnswer) = %q", code)
	}
	if code := ErrorCode(context.DeadlineExceeded); code != "timeout" {
		t.Errorf("ErrorCode(deadline) = %q", code)
	}
	if code := ErrorCode(nil); code != "" {
		t.Errorf("ErrorCode(nil) = %q", code)
	}
}

func TestQueryCancellation(t *testing.T) {
	s := testSystem(t)
	q := s.SampleQuestions(1)[0]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.Query(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("cancelled query took %v, want prompt return", elapsed)
	}

	// WithTimeout plumbs a deadline without caller context surgery.
	if _, err := s.Query(context.Background(), q, WithTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns query err = %v, want deadline exceeded", err)
	}
}

// TestConcurrentQueryAndLearn exercises the documented guarantee that
// retraining is safe under traffic (run with -race): queries race Learn
// and must each complete against a coherent engine snapshot.
func TestConcurrentQueryAndLearn(t *testing.T) {
	s, err := Build(Options{Flavor: "dbpedia", Seed: 7, Scale: 12, PairsPerIntent: 8})
	if err != nil {
		t.Fatal(err)
	}
	qs := s.SampleQuestions(6)
	pairs := s.TrainingCorpus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(g+i)%len(qs)]
				if _, err := s.Query(ctx, q); err != nil && !IsUnanswerable(err) {
					t.Errorf("Query(%q) under Learn: %v", q, err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 3; i++ {
		s.Learn(pairs[:len(pairs)-i])
		s.Stats()
	}
	close(stop)
	wg.Wait()
}

func TestChainFallsThroughTypedErrors(t *testing.T) {
	s := testSystem(t)
	ctx := context.Background()
	syn, err := s.Baseline("synonym")
	if err != nil {
		t.Fatal(err)
	}
	hybrid := Chain(s, syn)

	// A question the primary answers: the chain returns the primary's
	// full result, interpretations included.
	q := s.SampleQuestions(1)[0]
	res, err := hybrid.Query(ctx, q)
	if err != nil || res.Answer == nil || res.Answer.Predicate == "" {
		t.Fatalf("chain lost the primary answer for %q: %v %+v", q, err, res)
	}
	// A question nobody answers keeps the primary's typed classification.
	if _, err := hybrid.Query(ctx, "how do magnets work at night?"); !IsUnanswerable(err) {
		t.Errorf("exhausted chain err = %v, want typed unanswerable", err)
	}
}

// fakeAnswerer scripts one Answerer response for chain plumbing tests.
type fakeAnswerer struct {
	res   *Result
	err   error
	calls int
}

func (f *fakeAnswerer) Query(context.Context, string, ...QueryOption) (*Result, error) {
	f.calls++
	return f.res, f.err
}

func TestChainAbortsOnContextError(t *testing.T) {
	primary := &fakeAnswerer{err: context.DeadlineExceeded}
	fallback := &fakeAnswerer{res: &Result{}}
	if _, err := Chain(primary, fallback).Query(context.Background(), "q"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if fallback.calls != 0 {
		t.Error("chain burned budget on a fallback after a context error")
	}

	// Typed errors do fall through, first error wins on exhaustion.
	primary = &fakeAnswerer{err: ErrNoTemplate}
	fallback = &fakeAnswerer{err: ErrNoAnswer}
	if _, err := Chain(primary, fallback).Query(context.Background(), "q"); !errors.Is(err, ErrNoTemplate) {
		t.Fatalf("exhausted chain err = %v, want primary's ErrNoTemplate", err)
	}
	if fallback.calls != 1 {
		t.Error("fallback not consulted on typed error")
	}
}

func TestBaselineAnswerer(t *testing.T) {
	s := testSystem(t)
	if _, err := s.Baseline("kbqa"); err == nil {
		t.Error("kbqa must not be its own fallback")
	}
	if _, err := s.Baseline("nope"); err == nil {
		t.Error("expected error for unknown baseline")
	}
	rule, err := s.Baseline("rule")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rule.Query(ctx, "What is the population of nowhere?"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled baseline err = %v, want context.Canceled", err)
	}
}

// TestOptionsDefaults covers every Options field: the zero value resolves
// to the documented defaults, every explicit field overrides, and the
// NoiseRate pointer distinguishes unset from an explicit zero (the old
// `> 0` check silently swallowed NoiseRate: 0).
func TestOptionsDefaults(t *testing.T) {
	def, err := Options{}.worldConfig()
	if err != nil {
		t.Fatal(err)
	}
	if def.Flavor.String() != "Freebase" || def.Seed != 42 || def.Scale != 30 ||
		def.PairsPerIntent != 40 || def.NoiseRate != 0.15 || def.Shards != 4 {
		t.Fatalf("zero-Options defaults = %+v", def)
	}

	full, err := Options{
		Flavor:         "dbpedia",
		Seed:           9,
		Scale:          11,
		PairsPerIntent: 13,
		NoiseRate:      Noise(0.3),
		Shards:         2,
	}.worldConfig()
	if err != nil {
		t.Fatal(err)
	}
	if full.Flavor.String() != "DBpedia" || full.Seed != 9 || full.Scale != 11 ||
		full.PairsPerIntent != 13 || full.NoiseRate != 0.3 || full.Shards != 2 {
		t.Fatalf("explicit Options lost a field: %+v", full)
	}

	noiseFree, err := Options{NoiseRate: Noise(0)}.worldConfig()
	if err != nil {
		t.Fatal(err)
	}
	if noiseFree.NoiseRate != 0 {
		t.Fatalf("Noise(0) resolved to %v, want 0 (the zero-value bug)", noiseFree.NoiseRate)
	}

	if _, err := (Options{Flavor: "klingon"}).worldConfig(); err == nil {
		t.Error("expected error for unknown flavor")
	}
}

// TestNoiseFreeBuild proves Noise(0) reaches corpus generation: the built
// corpus contains no corrupted pairs.
func TestNoiseFreeBuild(t *testing.T) {
	s, err := Build(Options{Flavor: "dbpedia", Seed: 5, Scale: 8, PairsPerIntent: 6, NoiseRate: Noise(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.world.Pairs {
		if p.Noise {
			t.Fatal("Noise(0) corpus still contains a corrupted pair")
		}
	}
	if len(s.world.Pairs) == 0 {
		t.Fatal("empty corpus")
	}
}
