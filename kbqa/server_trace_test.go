package kbqa

import (
	"context"
	"testing"
	"time"
)

// TestServerTraceIDStamped drives a traced server and pins the TraceID
// contract: every Result carries the ID of the request's own trace, a
// cache hit gets a fresh ID on a shallow copy (the shared cached Result
// is never mutated), and each ID resolves to a retained trace whose tree
// contains the serving-pipeline spans.
func TestServerTraceIDStamped(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{TraceSampleRate: 1})
	defer sv.Close()
	if sv.Tracer() == nil {
		t.Fatal("trace options set but Tracer() is nil")
	}
	ctx := context.Background()
	q := s.SampleQuestions(1)[0]

	r1, err := sv.Query(ctx, q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	r2, err := sv.Query(ctx, q) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if r1.TraceID == "" || r2.TraceID == "" {
		t.Fatalf("traced queries returned empty TraceIDs: %q, %q", r1.TraceID, r2.TraceID)
	}
	if r1.TraceID == r2.TraceID {
		t.Fatalf("distinct requests share TraceID %s", r1.TraceID)
	}
	if r1.Answer != nil && r2.Answer != nil && r1.Answer.Value != r2.Answer.Value {
		t.Fatal("cache hit diverged from the computed answer")
	}

	byID := map[string]TraceSnapshot{}
	for _, tr := range sv.Traces() {
		byID[tr.ID] = tr
	}
	miss, ok := byID[r1.TraceID]
	if !ok {
		t.Fatalf("TraceID %s not in Traces()", r1.TraceID)
	}
	if miss.Root.Name != "kbqa.query" {
		t.Errorf("root span = %q, want kbqa.query", miss.Root.Name)
	}
	if v, _ := miss.Root.Attr("question"); v != q {
		t.Errorf("root question attr = %q, want %q", v, q)
	}
	if miss.Root.Find("serve.cache") == nil {
		t.Error("miss trace has no serve.cache span")
	}
	hit, ok := byID[r2.TraceID]
	if !ok {
		t.Fatalf("cache-hit TraceID %s not in Traces()", r2.TraceID)
	}
	if cs := hit.Root.Find("serve.cache"); cs == nil {
		t.Error("hit trace has no serve.cache span")
	} else if v, _ := cs.Attr("hit"); v != "true" {
		t.Errorf("second request cache attr = %q, want true", v)
	}
	if hit.Root.Find("serve.engine") != nil {
		t.Error("cache hit re-entered the engine")
	}
}

// TestServerUntracedHasNoTraceID pins the off state: no trace options, no
// tracer, no TraceID, no retained traces.
func TestServerUntracedHasNoTraceID(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	if sv.Tracer() != nil {
		t.Fatal("tracer built without trace options")
	}
	q := s.SampleQuestions(1)[0]
	res, err := sv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Errorf("untraced result carries TraceID %q", res.TraceID)
	}
	if got := sv.Traces(); len(got) != 0 {
		t.Errorf("untraced server retained %d traces", len(got))
	}
}

// TestServerBatchTraceIDs checks that QueryBatch results are stamped with
// the batch trace's ID.
func TestServerBatchTraceIDs(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{TraceSampleRate: 1, SlowQueryThreshold: time.Hour})
	defer sv.Close()
	qs := s.SampleQuestions(4)
	brs := sv.QueryBatch(context.Background(), qs)
	var tid string
	for _, br := range brs {
		if br.Err != nil || br.Result == nil {
			continue
		}
		if br.Result.TraceID == "" {
			t.Fatalf("batch result for %q has no TraceID", br.Question)
		}
		if tid == "" {
			tid = br.Result.TraceID
		} else if br.Result.TraceID != tid {
			t.Fatalf("batch results span trace IDs %s and %s, want one batch trace", tid, br.Result.TraceID)
		}
	}
	if tid == "" {
		t.Skip("no batch question answered; nothing to assert")
	}
	for _, tr := range sv.Traces() {
		if tr.ID == tid {
			if tr.Root.Name != "kbqa.batch" {
				t.Errorf("batch trace root = %q, want kbqa.batch", tr.Root.Name)
			}
			return
		}
	}
	t.Fatalf("batch trace %s not retained", tid)
}
