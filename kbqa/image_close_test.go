package kbqa

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// mappedCount counts this process's live memory mappings of path
// (linux: one /proc/self/maps line per mapping).
func mappedCount(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Fatalf("read maps: %v", err)
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasSuffix(line, path) {
			n++
		}
	}
	return n
}

// TestCloseUnmapsKBImage: Close must actually release the snapshot
// mapping and surface the unmap result — a discarded munmap error (or a
// skipped unmap) accumulates address space across Build/Close cycles in
// a process that reloads its KB, which is exactly how a long-lived
// server rebuilds after retraining.
func TestCloseUnmapsKBImage(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("reads /proc/self/maps")
	}
	opts := Options{Flavor: "freebase", Seed: 7, Scale: 10, PairsPerIntent: 4}
	base, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	img := filepath.Join(t.TempDir(), "kb.img")
	if err := base.SaveKBImage(img); err != nil {
		t.Fatal(err)
	}

	withImage := opts
	withImage.KBImage = img
	for i := 0; i < 3; i++ {
		s, err := Build(withImage)
		if err != nil {
			t.Fatalf("Build %d: %v", i, err)
		}
		if n := mappedCount(t, img); n == 0 {
			t.Fatalf("Build %d: image %s is not mapped", i, img)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close %d: %v", i, err)
		}
		if n := mappedCount(t, img); n != 0 {
			t.Fatalf("Close %d left %d live mapping(s) of %s", i, n, img)
		}
	}

	// Building with both external backings must fail fast, before either
	// is acquired — nothing to leak, nothing mapped.
	conflicted := withImage
	conflicted.ShardServers = []string{"127.0.0.1:1"}
	if _, err := Build(conflicted); err == nil {
		t.Fatal("Build accepted KBImage together with ShardServers")
	}
	if n := mappedCount(t, img); n != 0 {
		t.Fatalf("failed Build left %d live mapping(s) of %s", n, img)
	}
}
