package kbqa

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Typed query failures, shared with the engine so errors.Is works across
// layers. Context errors (context.Canceled, context.DeadlineExceeded) pass
// through Query unwrapped.
var (
	// ErrNoEntity: no token span of the question matched an entity label.
	ErrNoEntity = core.ErrNoEntity
	// ErrNoTemplate: an entity was found but no learned template carries
	// P(p|t) mass for the question shape.
	ErrNoTemplate = core.ErrNoTemplate
	// ErrNoAnswer: interpretations existed but produced no value (the
	// paper's "null" reply), or a fallback chain was exhausted.
	ErrNoAnswer = core.ErrNoAnswer
)

// IsUnanswerable reports whether err is one of the typed no-answer
// failures (ErrNoEntity, ErrNoTemplate, ErrNoAnswer) as opposed to a
// context or serving-layer failure. Chain retries fallbacks only on
// unanswerable errors.
func IsUnanswerable(err error) bool { return core.Unanswerable(err) }

// Stable error codes of the typed failures, used by the HTTP layer's
// error_code field and the kbqa_query_errors_total{code=...} metric.
const (
	CodeNoEntity   = "no_entity"
	CodeNoTemplate = "no_template"
	CodeNoAnswer   = "no_answer"
)

// ErrorCode maps any error Query can return to a stable code: "" for nil,
// the typed codes above, and the serving codes (timeout, canceled,
// shutting_down, engine_panic, internal) for everything else.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrNoEntity):
		return CodeNoEntity
	case errors.Is(err, ErrNoTemplate):
		return CodeNoTemplate
	case errors.Is(err, ErrNoAnswer):
		return CodeNoAnswer
	default:
		return serve.ErrorCode(err)
	}
}

// errorFromCode inverts ErrorCode for the typed codes, used when a cached
// negative result is rehydrated into an error.
func errorFromCode(code string) error {
	switch code {
	case CodeNoEntity:
		return ErrNoEntity
	case CodeNoTemplate:
		return ErrNoTemplate
	default:
		return ErrNoAnswer
	}
}

// DefaultTopK is how many ranked interpretations Query returns when
// WithTopK is not given.
const DefaultTopK = 3

// queryConfig is the resolved option set of one Query call.
type queryConfig struct {
	topK       int
	noVariants bool
	timeout    time.Duration
}

func newQueryConfig(opts []QueryOption) queryConfig {
	cfg := queryConfig{topK: DefaultTopK}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// fingerprint canonically encodes the result-shaping options; the serving
// layer keys its answer cache and singleflight on (question, fingerprint)
// so differently-optioned queries never share a result. Timeout is
// deliberately excluded: it bounds the work, not the value.
func (c queryConfig) fingerprint() string {
	return fmt.Sprintf("k=%d;v=%t", c.topK, !c.noVariants)
}

// QueryOption tunes one Query call.
type QueryOption func(*queryConfig)

// WithTopK sets how many ranked interpretations the Result carries
// (default DefaultTopK; 0 disables ranking entirely). The answer itself is
// independent of k: k=1 returns exactly the interpretation list's head
// alongside the same answer every other k produces.
func WithTopK(k int) QueryOption { return func(c *queryConfig) { c.topK = k } }

// WithoutVariants disables auto-routing to the ranking / comparison /
// listing engine, forcing the BFQ / complex pipeline — the behaviour of
// the deprecated Ask.
func WithoutVariants() QueryOption { return func(c *queryConfig) { c.noVariants = true } }

// WithTimeout bounds this call with a deadline, a convenience for callers
// without their own context plumbing; the deadline reaches the engine's
// probe loops, so expiry stops the scan rather than abandoning it.
func WithTimeout(d time.Duration) QueryOption { return func(c *queryConfig) { c.timeout = d } }

// Interpretation is one ranked (entity, template, predicate) candidate of
// Eq (7)'s summation, surfaced with its joint score instead of being
// discarded by the argmax.
type Interpretation struct {
	// Entity is the normalized label of the candidate entity.
	Entity string `json:"entity"`
	// Template is the learned template that matched.
	Template string `json:"template"`
	// Predicate is the predicate path, in arrow notation when expanded.
	Predicate string `json:"predicate"`
	// Score is the joint weight P(e|q)·P(t|e,q)·P(p|t); the list is
	// sorted by descending Score.
	Score float64 `json:"score"`
	// Values are the normalized labels of V(e, p), sorted.
	Values []string `json:"values,omitempty"`
}

// QueryTimings carries per-stage latencies of one query: Parse covers
// tokenization and mention lookup, Match template derivation and the
// decomposition DP, Probe the model lookups and knowledge-base probing;
// Total is end-to-end including variant routing.
type QueryTimings struct {
	Parse time.Duration `json:"parse"`
	Match time.Duration `json:"match"`
	Probe time.Duration `json:"probe"`
	Total time.Duration `json:"total"`
}

// Result is a successful Query reply. Exactly one of Answer and Variant is
// non-nil: Answer for BFQ / complex questions, Variant for questions the
// ranking / comparison / listing engine recognized. Results returned by a
// Server may be shared with concurrent callers via the answer cache and
// must be treated as read-only.
type Result struct {
	Question string `json:"question"`
	// Answer is the argmax reply of the BFQ / complex pipeline.
	Answer *Answer `json:"answer,omitempty"`
	// Variant is the reply of the variant engine.
	Variant *VariantAnswer `json:"variant,omitempty"`
	// Interpretations are the top-K ranked candidate interpretations
	// (empty for variant answers and when WithTopK(0) was given).
	Interpretations []Interpretation `json:"interpretations,omitempty"`
	// Timings attributes the latency of the computation that produced
	// this result (a cache hit reports the original computation's).
	Timings QueryTimings `json:"timings"`
	// TraceID identifies the request trace this result was produced (or
	// served) under, when tracing is enabled — the same ID the HTTP layer
	// echoes as X-Kbqa-Trace and /debug/traces serves. Empty when the
	// request was untraced.
	TraceID string `json:"trace_id,omitempty"`
}

// Answerer is anything that answers questions through the unified
// context-aware contract: *System, Server, the Baseline adapters, and
// Chain compositions of all of them.
type Answerer interface {
	Query(ctx context.Context, question string, opts ...QueryOption) (*Result, error)
}

// Query answers a question of any supported shape through one entry point:
// binary factoid questions, complex (multi-hop) questions, and — unless
// WithoutVariants is given — ranking / comparison / listing variants. The
// Result carries the answer, the top-K ranked interpretations, the
// execution trace (Answer.Steps) and per-stage timings.
//
// Failures are typed: ErrNoEntity, ErrNoTemplate and ErrNoAnswer classify
// unanswerable questions (see IsUnanswerable), and ctx.Err() passes
// through when the context expires — cancellation is checked between
// knowledge-base probes and between chain hops, so a deadline stops work
// on large stores instead of letting the scan run to completion.
func (s *System) Query(ctx context.Context, question string, opts ...QueryOption) (*Result, error) {
	res, _, err := s.query(ctx, question, newQueryConfig(opts))
	return res, err
}

// query is the resolved-config implementation shared with the serving
// layer, which also wants the engine stage timings for failed calls.
func (s *System) query(ctx context.Context, question string, cfg queryConfig) (*Result, core.Timings, error) {
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, core.Timings{}, err
	}
	start := time.Now()
	eng := s.engine()
	res := &Result{Question: question, TraceID: obs.TraceID(ctx)}
	if !cfg.noVariants {
		if va, ok := eng.AnswerVariant(question); ok {
			v := variantFromCore(va)
			res.Variant = &v
			res.Timings.Total = time.Since(start)
			return res, core.Timings{Total: res.Timings.Total}, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, core.Timings{}, err
		}
	}
	ans, ranked, tm, err := eng.AnswerTopKTimed(ctx, question, cfg.topK)
	tm.Total = time.Since(start)
	if err != nil {
		return nil, tm, err
	}
	a := answerFromCore(ans)
	res.Answer = &a
	res.Interpretations = interpretationsFromCore(ranked)
	res.Timings = QueryTimings{Parse: tm.Parse, Match: tm.Match, Probe: tm.Probe, Total: tm.Total}
	return res, tm, nil
}

// interpretationsFromCore converts the engine's ranked interpretations to
// the public shape.
func interpretationsFromCore(ranked []core.Ranked) []Interpretation {
	if len(ranked) == 0 {
		return nil
	}
	out := make([]Interpretation, len(ranked))
	for i, r := range ranked {
		out[i] = Interpretation{
			Entity:    r.EntityLabel,
			Template:  r.Template,
			Predicate: r.Path,
			Score:     r.Score,
			Values:    r.Values,
		}
	}
	return out
}

// variantFromCore converts the engine's variant answer to the public
// shape.
func variantFromCore(va core.VariantAnswer) VariantAnswer {
	return VariantAnswer{
		Kind:      va.Kind.String(),
		Entities:  va.Entities,
		Values:    va.Values,
		Predicate: va.Path,
	}
}

// Baseline returns one of the reimplemented comparison systems
// ("keyword", "synonym", "graph", "rule") wired to this system's knowledge
// base, lifted into the Answerer contract — the natural fallback for
// Chain. Baseline answers carry no template, interpretations or variant
// routing; unanswered questions return ErrNoAnswer.
func (s *System) Baseline(name string) (Answerer, error) {
	sys, ok := s.world.Systems[name]
	if !ok || name == "kbqa" {
		return nil, fmt.Errorf("kbqa: unknown baseline %q (want keyword, synonym, graph, or rule)", name)
	}
	return baselineAnswerer{ad: baseline.Adapter{Sys: sys}}, nil
}

// baselineAnswerer adapts baseline.Adapter to the public Answerer shape.
type baselineAnswerer struct {
	ad baseline.Adapter
}

func (b baselineAnswerer) Query(ctx context.Context, question string, opts ...QueryOption) (*Result, error) {
	cfg := newQueryConfig(opts)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := b.ad.Query(ctx, question)
	if err != nil {
		return nil, err
	}
	return &Result{
		Question: question,
		Answer:   &Answer{Value: res.Value, Values: res.Values, Predicate: res.Path},
		Timings:  QueryTimings{Total: time.Since(start)},
	}, nil
}

// Chain composes Answerers into a fallback cascade (the hybrid scheme of
// Sec 7.3.1): each question goes to primary first, and every typed
// unanswerable failure falls through to the next system. Context and
// serving-layer errors abort the cascade immediately — a timed-out
// primary must not burn the remaining budget on fallbacks. When every
// system fails, the primary's error is returned (the most informative
// classification). Chain replaces the closure-based Fallback /
// BuiltinBaseline pair.
func Chain(primary Answerer, fallbacks ...Answerer) Answerer {
	return chain(append([]Answerer{primary}, fallbacks...))
}

type chain []Answerer

func (c chain) Query(ctx context.Context, question string, opts ...QueryOption) (*Result, error) {
	var firstErr error
	for _, a := range c {
		res, err := a.Query(ctx, question, opts...)
		if err == nil {
			return res, nil
		}
		if !IsUnanswerable(err) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = ErrNoAnswer
	}
	return nil, firstErr
}
