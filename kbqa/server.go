package kbqa

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/text"
)

// Sentinel errors of the serving runtime, for callers mapping failures to
// transport statuses.
var (
	// ErrShuttingDown is returned for requests arriving after Close.
	ErrShuttingDown = serve.ErrShuttingDown
	// ErrEnginePanic wraps a panic recovered from the engine; an internal
	// bug, not a transient failure — retries re-trigger it.
	ErrEnginePanic = serve.ErrEnginePanic
)

// ServerOptions tunes a System.Server runtime; the zero value is
// production-sensible (16 cache shards × 4096 total entries, admission
// bounded at 4×GOMAXPROCS, no default deadline).
type ServerOptions struct {
	// CacheShards is the number of independently locked answer-cache
	// shards (default 16).
	CacheShards int
	// CacheEntries is the total answer-cache capacity. 0 means the
	// default (4096); negative disables caching.
	CacheEntries int
	// MaxConcurrent bounds concurrent engine calls. 0 means
	// 4×GOMAXPROCS; negative means unbounded.
	MaxConcurrent int
	// BatchWorkers sizes AskBatch's worker pool (default GOMAXPROCS).
	BatchWorkers int
	// Timeout is the per-request deadline applied when the caller's
	// context has none (0 = none).
	Timeout time.Duration
}

// Server is the production serving runtime around a System: a sharded LRU
// answer cache with singleflight deduplication, admission control, an
// order-preserving batch executor, and a self-instrumented metrics
// pipeline. Unlike System.Ask it is context-aware and designed for heavy
// concurrent traffic; cmd/kbqa-server is a thin HTTP shell over it.
type Server struct {
	sys *System
	rt  *serve.Runtime[Answer]
}

// Server wraps the system in a serving runtime. The underlying System must
// not be retrained (Learn, LoadModel) while the server is taking traffic.
func (s *System) Server(o ServerOptions) *Server {
	rt := serve.New(func(q string) (Answer, serve.StageTimings, bool) {
		ans, tm, ok := s.world.Engine.AnswerTimed(q)
		st := serve.StageTimings{Parse: tm.Parse, Match: tm.Match, Probe: tm.Probe}
		if !ok {
			return Answer{}, st, false
		}
		return answerFromCore(ans), st, true
	}, serve.Options{
		CacheShards:   o.CacheShards,
		CacheEntries:  o.CacheEntries,
		MaxConcurrent: o.MaxConcurrent,
		BatchWorkers:  o.BatchWorkers,
		Timeout:       o.Timeout,
		Normalize:     text.Normalize,
	})
	return &Server{sys: s, rt: rt}
}

// Ask answers one question through the serving pipeline. ok is false for
// unanswerable questions; err is non-nil only for serving-layer failures
// (deadline exceeded while queued, server closed).
func (sv *Server) Ask(ctx context.Context, question string) (Answer, bool, error) {
	return sv.rt.Ask(ctx, question)
}

// BatchAnswer is one slot of a batch reply, aligned with the input order.
type BatchAnswer struct {
	Question string
	Answer   Answer
	Answered bool
	Err      error
}

// AskBatch answers a slice of questions concurrently over a bounded worker
// pool, preserving input order. Each question goes through the full
// serving pipeline, so duplicates inside one batch cost one engine call.
func (sv *Server) AskBatch(ctx context.Context, questions []string) []BatchAnswer {
	return toBatchAnswers(sv.rt.AskBatch(ctx, questions))
}

// Metrics snapshots the serving runtime's counters and latency histograms.
func (sv *Server) Metrics() ServerMetrics {
	return sv.rt.Metrics()
}

// System returns the wrapped system (for /stats-style introspection).
func (sv *Server) System() *System { return sv.sys }

// Close puts the server into shutdown: subsequent Ask/AskBatch calls fail
// fast while in-flight requests drain normally.
func (sv *Server) Close() { sv.rt.Close() }

// AskBatch is the uncached batch form of Ask: the questions fan out over a
// bounded worker pool (GOMAXPROCS workers) and the replies come back in
// input order. For sustained serving traffic prefer Server, which adds
// caching, deduplication and admission control.
func (s *System) AskBatch(questions []string) []BatchAnswer {
	return toBatchAnswers(serve.RunBatch(context.Background(), questions, 0, s.Ask))
}

func toBatchAnswers(items []serve.BatchItem[Answer]) []BatchAnswer {
	out := make([]BatchAnswer, len(items))
	for i, it := range items {
		out[i] = BatchAnswer{Question: it.Question, Answer: it.Answer, Answered: it.OK, Err: it.Err}
	}
	return out
}

// answerFromCore converts the engine's answer to the public shape.
func answerFromCore(ans core.Answer) Answer {
	out := Answer{
		Value:     ans.Value,
		Values:    ans.Values,
		Predicate: ans.Path,
		Template:  ans.Template,
		Score:     ans.Score,
	}
	for _, st := range ans.Steps {
		out.Steps = append(out.Steps, Step{
			Question:  st.Question,
			Questions: st.Questions,
			Template:  st.Template,
			Predicate: st.Path,
			Value:     st.Value,
		})
	}
	return out
}

// ServerMetrics is the JSON document behind the server's /metrics
// endpoint. CacheHits + CacheMisses == Served in every quiescent snapshot:
// each request records exactly one of the two. The aliases expose the
// runtime's snapshot types directly so the public view cannot drift from
// the runtime's instrumentation.
type ServerMetrics = serve.Snapshot

// StageMetrics is the latency histogram of one pipeline stage (parse,
// match, probe, or total), in milliseconds.
type StageMetrics = serve.HistogramSnapshot

// StageBucket is one histogram bucket: observations at or below the upper
// bound (non-cumulative).
type StageBucket = serve.Bucket
