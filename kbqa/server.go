package kbqa

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/text"
)

// Sentinel errors of the serving runtime, for callers mapping failures to
// transport statuses.
var (
	// ErrShuttingDown is returned for requests arriving after Close.
	ErrShuttingDown = serve.ErrShuttingDown
	// ErrEnginePanic wraps a panic recovered from the engine; an internal
	// bug, not a transient failure — retries re-trigger it.
	ErrEnginePanic = serve.ErrEnginePanic
)

// ServerOptions tunes a System.Server runtime; the zero value is
// production-sensible (16 cache shards × 4096 total entries, admission
// bounded at 4×GOMAXPROCS, no default deadline, memory-only cache, no
// expiry, no rate limit).
type ServerOptions struct {
	// CacheShards is the number of independently locked answer-cache
	// shards (default 16).
	CacheShards int
	// CacheEntries is the total answer-cache capacity. 0 means the
	// default (4096); negative disables caching.
	CacheEntries int
	// CacheDir enables the persistent answer cache: answers and the model
	// generation are appended to a checksummed segment log under the
	// directory and replayed on the next boot, so a restarted server
	// answers its hot set from disk without re-probing the engine. The
	// active segment rotates once it crosses a size threshold and a
	// background merger compacts sealed segments into a dense base, so
	// maintenance never stalls the request path. The directory is bound to
	// the system that wrote it (flavor, sizes): opening it under a
	// different system discards the log instead of serving a foreign
	// model's answers, and it is flock-guarded — a second server process
	// pointed at the same directory fails fast instead of corrupting it.
	// Entries invalidated by Learn/LoadModel before a restart stay
	// invalidated after it.
	CacheDir string
	// CacheTTL expires cache entries: an entry older than CacheTTL is
	// recomputed on next access (and purged from memory on the expired
	// read, so dead entries never pin cache capacity). The persistent
	// cache applies the same cutoff as a liveness filter, so expired
	// entries are dropped by background merges and boot replay instead of
	// being rewritten forever. 0 means no expiry.
	CacheTTL time.Duration
	// CacheSyncEvery is the period of the persistent cache's background
	// fsync: an answer is durable within CacheSyncEvery of being computed,
	// without waiting for Flush or shutdown. 0 means the default (1s);
	// negative disables periodic sync (durability points are then Flush,
	// Close, and segment rotations/merges). Ignored without CacheDir.
	CacheSyncEvery time.Duration
	// MaxConcurrent bounds concurrent engine calls. 0 means
	// 4×GOMAXPROCS; negative means unbounded.
	MaxConcurrent int
	// BatchWorkers sizes QueryBatch's worker pool (default GOMAXPROCS).
	BatchWorkers int
	// Timeout is the per-request deadline applied when the caller's
	// context has none (0 = none). The deadline is handed to the engine,
	// so expiry stops the probe loops instead of leaking the work.
	Timeout time.Duration
	// RateLimit caps each client's sustained request rate in
	// requests/second, enforced by Server.Allow in front of admission
	// control; 0 disables rate limiting. Rejections are counted in
	// kbqa_ratelimit_rejected_total.
	RateLimit float64
	// RateBurst is the per-client burst allowance (default ⌈RateLimit⌉,
	// minimum 1).
	RateBurst int
	// TraceSampleRate is the probability in [0,1] that a request trace is
	// retained in the trace buffer regardless of duration. Setting any of
	// the three trace options builds the server's tracer; with all three
	// zero, tracing is off and requests pay nothing.
	TraceSampleRate float64
	// SlowQueryThreshold always-captures (and logs, when Logger is set)
	// traces of requests at or above this duration, independent of
	// sampling — the slow-query log. 0 disables slow capture.
	SlowQueryThreshold time.Duration
	// TraceBuffer bounds the ring of retained traces behind Server.Traces
	// and /debug/traces (default 128 once tracing is on).
	TraceBuffer int
	// Logger receives the server's structured records: slow-query
	// summaries and the persistent cache's background events (merges,
	// rotations, write errors). Nil discards them.
	Logger *Logger
}

// traceEnabled reports whether any trace option asks for a tracer.
func (o ServerOptions) traceEnabled() bool {
	return o.TraceSampleRate > 0 || o.SlowQueryThreshold > 0 || o.TraceBuffer > 0
}

// served is the cached unit of the serving runtime: either a successful
// Result or the stable code of a typed unanswerable failure. Caching the
// code (negative caching) protects the engine from repeated unanswerable
// questions just as a resident answer protects it from popular ones;
// context and infrastructure errors are never cached. The fields are
// exported (with JSON tags) because the persistent cache serializes served
// values through serve.JSONCodec.
type served struct {
	Res  *Result `json:"res,omitempty"`
	Code string  `json:"code,omitempty"`
}

// Server is the production serving runtime around a System: a
// generation-keyed answer cache (sharded LRU, optionally disk-backed so
// answers survive restarts) with singleflight deduplication, admission
// control, a per-client rate limiter, an order-preserving batch executor,
// and a self-instrumented metrics pipeline. It implements Answerer;
// cmd/kbqa-server is a thin HTTP shell over it.
type Server struct {
	sys     *System
	rt      *serve.Runtime[served]
	ds      *serve.DiskStore[served] // nil without CacheDir
	limiter *serve.Limiter
	tracer  *obs.Tracer // nil when tracing is off
	log     *obs.Logger // nil discards
	unhook  func()      // deregisters the retrain hook; called by Close
}

// Server wraps the system in a serving runtime. The system may be
// retrained (Learn, LoadModel) while serving: queries in flight finish on
// the engine they started with, and the retrain bumps the cache's model
// generation the moment it completes — every cached answer the old model
// computed becomes unreachable, in memory and on disk. The only error
// paths are the persistence options (an unopenable CacheDir, or CacheDir
// combined with disabled caching).
func (s *System) Server(o ServerOptions) (*Server, error) {
	sv := &Server{sys: s, log: o.Logger}
	if o.traceEnabled() {
		sv.tracer = obs.NewTracer(obs.Options{
			Capacity:      o.TraceBuffer,
			SampleRate:    o.TraceSampleRate,
			SlowThreshold: o.SlowQueryThreshold,
			Logger:        o.Logger,
		})
	}
	// The epoch is read before the store adopts a persisted generation and
	// re-checked after the retrain hook is live; a Learn completing in
	// between would otherwise have notified nobody, leaving its stale
	// entries reachable.
	epoch := s.retrainEpoch.Load()
	ro := serve.Options{
		CacheShards:   o.CacheShards,
		CacheEntries:  o.CacheEntries,
		TTL:           o.CacheTTL,
		MaxConcurrent: o.MaxConcurrent,
		BatchWorkers:  o.BatchWorkers,
		Timeout:       o.Timeout,
		Normalize:     text.Normalize,
	}
	var store serve.Store[served]
	if o.CacheDir != "" {
		if o.CacheEntries < 0 {
			return nil, errors.New("kbqa: CacheDir requires caching enabled (CacheEntries >= 0)")
		}
		sync := o.CacheSyncEvery
		if sync == 0 {
			sync = time.Second
		}
		if sync < 0 {
			sync = 0
		}
		ds, err := serve.OpenDiskStore[served](o.CacheDir, serve.JSONCodec[served]{}, serve.DiskOptions{
			Shards:    o.CacheShards,
			Entries:   o.CacheEntries,
			Meta:      s.cacheMeta(),
			ModelTag:  s.modelTag(),
			TTL:       o.CacheTTL,
			SyncEvery: sync,
			Log:       o.Logger,
			Tracer:    sv.tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("kbqa: open persistent answer cache: %w", err)
		}
		sv.ds = ds
		store = ds
	}
	sv.rt = serve.NewWithStore(sv.compute(newQueryConfig(nil)), ro, store)
	// Weight answers by their interpretation count, so a big top-K result
	// pays for the cache room it occupies instead of evicting many
	// single-answer entries one-for-one. Negative entries weigh the minimum.
	sv.rt.SetWeigher(func(a served) int {
		if a.Res == nil || len(a.Res.Interpretations) < 2 {
			return 1
		}
		return len(a.Res.Interpretations)
	})
	if o.RateLimit > 0 {
		sv.limiter = serve.NewLimiter(o.RateLimit, o.RateBurst)
	}
	// invalidate stamps the current model's content tag before bumping, so
	// the persisted generation record binds generation → model; a later
	// boot running a different model then refuses the entries instead of
	// serving another model's answers.
	invalidate := func() {
		if sv.ds != nil {
			sv.ds.SetModelTag(s.modelTag())
		}
		sv.rt.BumpGeneration()
	}
	sv.unhook = s.onRetrain(invalidate)
	if s.retrainEpoch.Load() != epoch {
		invalidate() // a retrain raced construction; over-invalidating is harmless
	}
	return sv, nil
}

// cacheMeta fingerprints the world a persistent cache directory belongs
// to, so a segment written by one system is never replayed into another
// (different flavor, seed or scale ⇒ different meta ⇒ the segment is
// discarded at open). Learned state is deliberately excluded — the model's
// identity travels separately as modelTag, per generation.
func (s *System) cacheMeta() string {
	st := s.Stats()
	return fmt.Sprintf("%s|e%d|t%d|p%d|c%d", st.Flavor, st.Entities, st.Triples, st.Predicates, st.CorpusSize)
}

// modelTag fingerprints the content of the current learned model, binding
// persisted cache generations to the model that computed them: a cache
// written under one model is never served by a process running another,
// however the mismatch arose (a Learn before the shutdown, a Learn before
// Server construction, a different training corpus entirely).
func (s *System) modelTag() string {
	s.mu.RLock()
	m := s.world.Model
	s.mu.RUnlock()
	return strconv.FormatUint(m.Fingerprint(), 16)
}

// compute builds the serving-layer engine function for one resolved option
// set: typed unanswerable failures become cacheable negative entries,
// while context and infrastructure errors propagate uncached.
func (sv *Server) compute(cfg queryConfig) serve.AskFunc[served] {
	return func(ctx context.Context, question string) (served, serve.StageTimings, bool, error) {
		res, tm, err := sv.sys.query(ctx, question, cfg)
		st := serve.StageTimings{Parse: tm.Parse, Match: tm.Match, Probe: tm.Probe}
		if err != nil {
			if IsUnanswerable(err) {
				return served{Code: ErrorCode(err)}, st, false, nil
			}
			return served{}, st, false, err
		}
		return served{Res: res}, st, true, nil
	}
}

// Query answers one question through the cache → singleflight → admission
// → engine pipeline, implementing Answerer. The cache and deduplication
// key is (normalized question, options fingerprint), so the same question
// under different options never shares a result. Errors are the same
// typed set as System.Query plus the serving-layer sentinels
// (ErrShuttingDown, ErrEnginePanic, deadline errors from queueing).
//
// The returned Result may be shared with concurrent callers via the
// answer cache: treat it as read-only. Its Timings describe the
// computation that produced it, which a cache hit skips.
func (sv *Server) Query(ctx context.Context, question string, opts ...QueryOption) (*Result, error) {
	cfg := newQueryConfig(opts)
	// Arm WithTimeout here, not inside the engine call: the deadline must
	// also bound cache/flight/admission waiting, and it must belong to
	// this caller — a singleflight leader's compute runs under the
	// leader's context, not a follower's.
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
		cfg.timeout = 0 // the deadline lives on ctx now; don't re-arm
	}
	ctx, finish := sv.startTrace(ctx, "kbqa.query", question)
	defer finish()
	out, ok, err := sv.rt.Do(ctx, question, cfg.fingerprint(), sv.compute(cfg))
	if err != nil {
		return nil, err
	}
	if !ok {
		sv.rt.CountError(out.Code)
		return nil, errorFromCode(out.Code)
	}
	return stampTraceID(out.Res, ctx), nil
}

// startTrace opens a server-rooted trace when the server has a tracer and
// the caller did not bring one (an HTTP middleware's trace, carried in
// ctx, wins — the server then only contributes spans). The returned finish
// must be called when the request completes; it is a no-op when no trace
// was started here.
func (sv *Server) startTrace(ctx context.Context, name, question string) (context.Context, func()) {
	noop := func() {}
	if sv.tracer == nil || obs.ActiveSpan(ctx) != nil {
		return ctx, noop
	}
	tctx, trace := sv.tracer.Start(ctx, name)
	if trace == nil {
		return ctx, noop
	}
	trace.Root().SetAttr("question", question)
	return tctx, trace.Finish
}

// stampTraceID returns res carrying the context's trace ID. Cached
// Results are shared between concurrent callers and must stay read-only,
// so a differing ID is stamped onto a shallow copy, never in place.
func stampTraceID(res *Result, ctx context.Context) *Result {
	tid := obs.TraceID(ctx)
	if res == nil || tid == "" || res.TraceID == tid {
		return res
	}
	r2 := *res
	r2.TraceID = tid
	return &r2
}

// BatchResult is one slot of a QueryBatch reply, aligned with the input
// order. Exactly one of Result and Err is set.
type BatchResult struct {
	Question string
	Result   *Result
	Err      error
}

// QueryBatch answers a slice of questions concurrently over a bounded
// worker pool, preserving input order; every question is answered under
// the same options. Each question goes through the full serving pipeline,
// so duplicates inside one batch cost one engine call.
func (sv *Server) QueryBatch(ctx context.Context, questions []string, opts ...QueryOption) []BatchResult {
	cfg := newQueryConfig(opts)
	// WithTimeout bounds the whole batch, queueing included (see Query).
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
		cfg.timeout = 0
	}
	ctx, finish := sv.startTrace(ctx, "kbqa.batch", fmt.Sprintf("[batch of %d]", len(questions)))
	defer finish()
	items := sv.rt.DoBatch(ctx, questions, cfg.fingerprint(), sv.compute(cfg))
	out := make([]BatchResult, len(items))
	for i, it := range items {
		br := BatchResult{Question: it.Question, Err: it.Err}
		if it.Err == nil {
			if it.OK {
				br.Result = stampTraceID(it.Answer.Res, ctx)
			} else {
				sv.rt.CountError(it.Answer.Code)
				br.Err = errorFromCode(it.Answer.Code)
			}
		}
		out[i] = br
	}
	return out
}

// Ask answers one question through the serving pipeline. ok is false for
// unanswerable questions; err is non-nil only for serving-layer failures.
//
// Deprecated: use Server.Query, which keeps the typed unanswerable errors
// and the ranked interpretations this shim discards.
func (sv *Server) Ask(ctx context.Context, question string) (Answer, bool, error) {
	res, err := sv.Query(ctx, question, WithoutVariants(), WithTopK(0))
	if err != nil {
		if IsUnanswerable(err) {
			return Answer{}, false, nil
		}
		return Answer{}, false, err
	}
	if res.Answer == nil {
		return Answer{}, false, nil
	}
	return *res.Answer, true, nil
}

// BatchAnswer is one slot of a batch reply, aligned with the input order.
type BatchAnswer struct {
	Question string
	Answer   Answer
	Answered bool
	Err      error
}

// AskBatch answers a slice of questions concurrently, preserving input
// order.
//
// Deprecated: use Server.QueryBatch, which keeps typed errors and full
// Results.
func (sv *Server) AskBatch(ctx context.Context, questions []string) []BatchAnswer {
	brs := sv.QueryBatch(ctx, questions, WithoutVariants(), WithTopK(0))
	out := make([]BatchAnswer, len(brs))
	for i, br := range brs {
		ba := BatchAnswer{Question: br.Question}
		switch {
		case br.Err == nil && br.Result != nil && br.Result.Answer != nil:
			ba.Answer = *br.Result.Answer
			ba.Answered = true
		case br.Err != nil && !IsUnanswerable(br.Err):
			ba.Err = br.Err
		}
		out[i] = ba
	}
	return out
}

// Metrics snapshots the serving runtime's counters and latency histograms.
func (sv *Server) Metrics() ServerMetrics {
	return sv.rt.Metrics()
}

// WriteMetricsPrometheus renders the same snapshot in the Prometheus text
// exposition format (kbqa_-prefixed counters, gauges and cumulative
// histograms, with kbqa_query_errors_total labelled by error code);
// PrometheusContentType is the matching Content-Type.
func (sv *Server) WriteMetricsPrometheus(w io.Writer) error {
	return serve.WritePrometheus(w, sv.rt.Metrics())
}

// PrometheusContentType is the Content-Type of WriteMetricsPrometheus
// output.
const PrometheusContentType = serve.PrometheusContentType

// System returns the wrapped system (for /stats-style introspection).
func (sv *Server) System() *System { return sv.sys }

// Tracer returns the server's request tracer, nil when tracing is off.
// Hand it to HTTP middleware that wants to root traces itself (and set
// X-Kbqa-Trace); Server.Query joins a caller-started trace instead of
// opening its own.
func (sv *Server) Tracer() *Tracer { return sv.tracer }

// Traces returns the retained request traces, newest first — the
// /debug/traces payload. Empty when tracing is off.
func (sv *Server) Traces() []TraceSnapshot { return sv.tracer.Snapshot() }

// FindTrace returns the retained trace with the given ID, if the bounded
// ring still holds it; a miss means the trace was never retained (not
// sampled, not slow) or has since been evicted.
func (sv *Server) FindTrace(id string) (TraceSnapshot, bool) { return sv.tracer.Find(id) }

// Logger returns the logger the server was built with (nil discards).
func (sv *Server) Logger() *Logger { return sv.log }

// Generation returns the model generation keying new cache entries; it
// starts from the persisted generation when CacheDir is set and bumps on
// every Learn/LoadModel of the wrapped system.
func (sv *Server) Generation() uint64 { return sv.rt.Generation() }

// WarmFromCorpus primes the answer cache at boot by answering qs through
// the full serving pipeline under the given options — the paper's cheap
// online phase paid once, ahead of traffic. Questions already resident
// (replayed from CacheDir, say) cost nothing. It reports how many of qs
// ended resident; positive and negative answers both warm the cache, while
// context and infrastructure failures don't. With caching disabled there
// is nothing to warm: it returns 0 without touching the engine.
func (sv *Server) WarmFromCorpus(ctx context.Context, qs []string, opts ...QueryOption) (warmed int) {
	cfg := newQueryConfig(opts)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
		cfg.timeout = 0
	}
	return sv.rt.Warm(ctx, qs, cfg.fingerprint(), sv.compute(cfg))
}

// Allow applies the per-client rate limit (ServerOptions.RateLimit) to one
// request from the given client key — an API key, a remote address,
// whatever identifies a caller. ok=false means the request must be refused
// (HTTP 429) and retryAfter is the Retry-After hint; rejections bump
// kbqa_ratelimit_rejected_total. With no rate limit configured every
// request is allowed.
func (sv *Server) Allow(client string) (ok bool, retryAfter time.Duration) {
	return sv.AllowN(client, 1)
}

// AllowN is Allow for a request worth n quota units — a batch of n
// questions is charged n, so batching cannot out-run the per-client rate
// (see serve.Limiter.AllowN for the debt semantics).
func (sv *Server) AllowN(client string, n int) (ok bool, retryAfter time.Duration) {
	if sv.limiter == nil {
		return true, 0
	}
	ok, retryAfter = sv.limiter.AllowN(client, n, time.Now())
	if !ok {
		sv.rt.CountRateLimited()
	}
	return ok, retryAfter
}

// Flush forces buffered persistent-cache writes to disk without closing
// the server; a no-op for memory-only servers.
func (sv *Server) Flush() error { return sv.rt.Flush() }

// Close puts the server into shutdown: subsequent calls fail fast while
// in-flight requests drain to completion, after which pending
// persistent-cache writes are flushed and the cache closed. The server's
// retrain hook is deregistered from the system, so closed servers aren't
// retained (or notified) by later Learn/LoadModel calls. The error is the
// flush/close outcome (always nil for memory-only servers).
func (sv *Server) Close() error {
	sv.unhook()
	return sv.rt.Close()
}

// AskBatch is the uncached batch form of Ask: the questions fan out over a
// bounded worker pool (GOMAXPROCS workers) and the replies come back in
// input order. The batch context reaches every worker, so cancelling it
// stops in-flight questions and marks undistributed slots with the
// context error. For sustained serving traffic prefer Server, which adds
// caching, deduplication and admission control.
//
// Deprecated: build a Server and use QueryBatch.
func (s *System) AskBatch(ctx context.Context, questions []string) []BatchAnswer {
	items := serve.RunBatch(ctx, questions, 0, s.Ask)
	out := make([]BatchAnswer, len(items))
	for i, it := range items {
		out[i] = BatchAnswer{Question: it.Question, Answer: it.Answer, Answered: it.OK, Err: it.Err}
	}
	return out
}

// answerFromCore converts the engine's answer to the public shape.
func answerFromCore(ans core.Answer) Answer {
	out := Answer{
		Value:     ans.Value,
		Values:    ans.Values,
		Predicate: ans.Path,
		Template:  ans.Template,
		Score:     ans.Score,
	}
	for _, st := range ans.Steps {
		out.Steps = append(out.Steps, Step{
			Question:  st.Question,
			Questions: st.Questions,
			Template:  st.Template,
			Predicate: st.Path,
			Value:     st.Value,
		})
	}
	return out
}

// ServerMetrics is the JSON document behind the server's /metrics
// endpoint. CacheHits + CacheMisses == Served in every quiescent snapshot:
// each request records exactly one of the two. The aliases expose the
// runtime's snapshot types directly so the public view cannot drift from
// the runtime's instrumentation.
type ServerMetrics = serve.Snapshot

// StageMetrics is the latency histogram of one pipeline stage (parse,
// match, probe, or total), in milliseconds.
type StageMetrics = serve.HistogramSnapshot

// StageBucket is one histogram bucket: observations at or below the upper
// bound (non-cumulative).
type StageBucket = serve.Bucket
