package kbqa

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/text"
)

// Sentinel errors of the serving runtime, for callers mapping failures to
// transport statuses.
var (
	// ErrShuttingDown is returned for requests arriving after Close.
	ErrShuttingDown = serve.ErrShuttingDown
	// ErrEnginePanic wraps a panic recovered from the engine; an internal
	// bug, not a transient failure — retries re-trigger it.
	ErrEnginePanic = serve.ErrEnginePanic
)

// ServerOptions tunes a System.Server runtime; the zero value is
// production-sensible (16 cache shards × 4096 total entries, admission
// bounded at 4×GOMAXPROCS, no default deadline).
type ServerOptions struct {
	// CacheShards is the number of independently locked answer-cache
	// shards (default 16).
	CacheShards int
	// CacheEntries is the total answer-cache capacity. 0 means the
	// default (4096); negative disables caching.
	CacheEntries int
	// MaxConcurrent bounds concurrent engine calls. 0 means
	// 4×GOMAXPROCS; negative means unbounded.
	MaxConcurrent int
	// BatchWorkers sizes QueryBatch's worker pool (default GOMAXPROCS).
	BatchWorkers int
	// Timeout is the per-request deadline applied when the caller's
	// context has none (0 = none). The deadline is handed to the engine,
	// so expiry stops the probe loops instead of leaking the work.
	Timeout time.Duration
}

// served is the cached unit of the serving runtime: either a successful
// Result or the stable code of a typed unanswerable failure. Caching the
// code (negative caching) protects the engine from repeated unanswerable
// questions just as a resident answer protects it from popular ones;
// context and infrastructure errors are never cached.
type served struct {
	res  *Result
	code string
}

// Server is the production serving runtime around a System: a sharded LRU
// answer cache keyed by (normalized question, options fingerprint) with
// singleflight deduplication, admission control, an order-preserving batch
// executor, and a self-instrumented metrics pipeline. It implements
// Answerer; cmd/kbqa-server is a thin HTTP shell over it.
type Server struct {
	sys *System
	rt  *serve.Runtime[served]
}

// Server wraps the system in a serving runtime. The system may be
// retrained (Learn, LoadModel) while serving — queries in flight finish on
// the engine they started with — but cached answers computed by the old
// model are served until their entries turn over.
func (s *System) Server(o ServerOptions) *Server {
	sv := &Server{sys: s}
	sv.rt = serve.New(sv.compute(newQueryConfig(nil)), serve.Options{
		CacheShards:   o.CacheShards,
		CacheEntries:  o.CacheEntries,
		MaxConcurrent: o.MaxConcurrent,
		BatchWorkers:  o.BatchWorkers,
		Timeout:       o.Timeout,
		Normalize:     text.Normalize,
	})
	return sv
}

// compute builds the serving-layer engine function for one resolved option
// set: typed unanswerable failures become cacheable negative entries,
// while context and infrastructure errors propagate uncached.
func (sv *Server) compute(cfg queryConfig) serve.AskFunc[served] {
	return func(ctx context.Context, question string) (served, serve.StageTimings, bool, error) {
		res, tm, err := sv.sys.query(ctx, question, cfg)
		st := serve.StageTimings{Parse: tm.Parse, Match: tm.Match, Probe: tm.Probe}
		if err != nil {
			if IsUnanswerable(err) {
				return served{code: ErrorCode(err)}, st, false, nil
			}
			return served{}, st, false, err
		}
		return served{res: res}, st, true, nil
	}
}

// Query answers one question through the cache → singleflight → admission
// → engine pipeline, implementing Answerer. The cache and deduplication
// key is (normalized question, options fingerprint), so the same question
// under different options never shares a result. Errors are the same
// typed set as System.Query plus the serving-layer sentinels
// (ErrShuttingDown, ErrEnginePanic, deadline errors from queueing).
//
// The returned Result may be shared with concurrent callers via the
// answer cache: treat it as read-only. Its Timings describe the
// computation that produced it, which a cache hit skips.
func (sv *Server) Query(ctx context.Context, question string, opts ...QueryOption) (*Result, error) {
	cfg := newQueryConfig(opts)
	// Arm WithTimeout here, not inside the engine call: the deadline must
	// also bound cache/flight/admission waiting, and it must belong to
	// this caller — a singleflight leader's compute runs under the
	// leader's context, not a follower's.
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
		cfg.timeout = 0 // the deadline lives on ctx now; don't re-arm
	}
	out, ok, err := sv.rt.Do(ctx, question, cfg.fingerprint(), sv.compute(cfg))
	if err != nil {
		return nil, err
	}
	if !ok {
		sv.rt.CountError(out.code)
		return nil, errorFromCode(out.code)
	}
	return out.res, nil
}

// BatchResult is one slot of a QueryBatch reply, aligned with the input
// order. Exactly one of Result and Err is set.
type BatchResult struct {
	Question string
	Result   *Result
	Err      error
}

// QueryBatch answers a slice of questions concurrently over a bounded
// worker pool, preserving input order; every question is answered under
// the same options. Each question goes through the full serving pipeline,
// so duplicates inside one batch cost one engine call.
func (sv *Server) QueryBatch(ctx context.Context, questions []string, opts ...QueryOption) []BatchResult {
	cfg := newQueryConfig(opts)
	// WithTimeout bounds the whole batch, queueing included (see Query).
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
		cfg.timeout = 0
	}
	items := sv.rt.DoBatch(ctx, questions, cfg.fingerprint(), sv.compute(cfg))
	out := make([]BatchResult, len(items))
	for i, it := range items {
		br := BatchResult{Question: it.Question, Err: it.Err}
		if it.Err == nil {
			if it.OK {
				br.Result = it.Answer.res
			} else {
				sv.rt.CountError(it.Answer.code)
				br.Err = errorFromCode(it.Answer.code)
			}
		}
		out[i] = br
	}
	return out
}

// Ask answers one question through the serving pipeline. ok is false for
// unanswerable questions; err is non-nil only for serving-layer failures.
//
// Deprecated: use Server.Query, which keeps the typed unanswerable errors
// and the ranked interpretations this shim discards.
func (sv *Server) Ask(ctx context.Context, question string) (Answer, bool, error) {
	res, err := sv.Query(ctx, question, WithoutVariants(), WithTopK(0))
	if err != nil {
		if IsUnanswerable(err) {
			return Answer{}, false, nil
		}
		return Answer{}, false, err
	}
	if res.Answer == nil {
		return Answer{}, false, nil
	}
	return *res.Answer, true, nil
}

// BatchAnswer is one slot of a batch reply, aligned with the input order.
type BatchAnswer struct {
	Question string
	Answer   Answer
	Answered bool
	Err      error
}

// AskBatch answers a slice of questions concurrently, preserving input
// order.
//
// Deprecated: use Server.QueryBatch, which keeps typed errors and full
// Results.
func (sv *Server) AskBatch(ctx context.Context, questions []string) []BatchAnswer {
	brs := sv.QueryBatch(ctx, questions, WithoutVariants(), WithTopK(0))
	out := make([]BatchAnswer, len(brs))
	for i, br := range brs {
		ba := BatchAnswer{Question: br.Question}
		switch {
		case br.Err == nil && br.Result != nil && br.Result.Answer != nil:
			ba.Answer = *br.Result.Answer
			ba.Answered = true
		case br.Err != nil && !IsUnanswerable(br.Err):
			ba.Err = br.Err
		}
		out[i] = ba
	}
	return out
}

// Metrics snapshots the serving runtime's counters and latency histograms.
func (sv *Server) Metrics() ServerMetrics {
	return sv.rt.Metrics()
}

// WriteMetricsPrometheus renders the same snapshot in the Prometheus text
// exposition format (kbqa_-prefixed counters, gauges and cumulative
// histograms, with kbqa_query_errors_total labelled by error code);
// PrometheusContentType is the matching Content-Type.
func (sv *Server) WriteMetricsPrometheus(w io.Writer) error {
	return serve.WritePrometheus(w, sv.rt.Metrics())
}

// PrometheusContentType is the Content-Type of WriteMetricsPrometheus
// output.
const PrometheusContentType = serve.PrometheusContentType

// System returns the wrapped system (for /stats-style introspection).
func (sv *Server) System() *System { return sv.sys }

// Close puts the server into shutdown: subsequent calls fail fast while
// in-flight requests drain normally.
func (sv *Server) Close() { sv.rt.Close() }

// AskBatch is the uncached batch form of Ask: the questions fan out over a
// bounded worker pool (GOMAXPROCS workers) and the replies come back in
// input order. For sustained serving traffic prefer Server, which adds
// caching, deduplication and admission control.
//
// Deprecated: build a Server and use QueryBatch.
func (s *System) AskBatch(questions []string) []BatchAnswer {
	items := serve.RunBatch(context.Background(), questions, 0, s.Ask)
	out := make([]BatchAnswer, len(items))
	for i, it := range items {
		out[i] = BatchAnswer{Question: it.Question, Answer: it.Answer, Answered: it.OK, Err: it.Err}
	}
	return out
}

// answerFromCore converts the engine's answer to the public shape.
func answerFromCore(ans core.Answer) Answer {
	out := Answer{
		Value:     ans.Value,
		Values:    ans.Values,
		Predicate: ans.Path,
		Template:  ans.Template,
		Score:     ans.Score,
	}
	for _, st := range ans.Steps {
		out.Steps = append(out.Steps, Step{
			Question:  st.Question,
			Questions: st.Questions,
			Template:  st.Template,
			Predicate: st.Path,
			Value:     st.Value,
		})
	}
	return out
}

// ServerMetrics is the JSON document behind the server's /metrics
// endpoint. CacheHits + CacheMisses == Served in every quiescent snapshot:
// each request records exactly one of the two. The aliases expose the
// runtime's snapshot types directly so the public view cannot drift from
// the runtime's instrumentation.
type ServerMetrics = serve.Snapshot

// StageMetrics is the latency histogram of one pipeline stage (parse,
// match, probe, or total), in milliseconds.
type StageMetrics = serve.HistogramSnapshot

// StageBucket is one histogram bucket: observations at or below the upper
// bound (non-cumulative).
type StageBucket = serve.Bucket
