package kbqa

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// mustServer builds a Server or fails the test; the constructor only
// errors on persistence options.
func mustServer(t testing.TB, s *System, o ServerOptions) *Server {
	t.Helper()
	sv, err := s.Server(o)
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

func TestServerAskMatchesSystemAsk(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	ctx := context.Background()
	for _, q := range s.SampleQuestions(10) {
		want, wantOK := s.Ask(ctx, q)
		for i := 0; i < 2; i++ { // second round is served from the cache
			got, gotOK, err := sv.Ask(ctx, q)
			if err != nil {
				t.Fatalf("Ask(%q): %v", q, err)
			}
			if gotOK != wantOK || got.Value != want.Value || got.Predicate != want.Predicate {
				t.Errorf("Ask(%q) round %d = (%+v, %v), want (%+v, %v)", q, i, got, gotOK, want, wantOK)
			}
		}
	}
	m := sv.Metrics()
	if m.CacheHits == 0 {
		t.Error("second round should have hit the cache")
	}
	if m.CacheHits+m.CacheMisses != m.Served {
		t.Errorf("hits(%d) + misses(%d) != served(%d)", m.CacheHits, m.CacheMisses, m.Served)
	}
}

func TestServerAskBatchOrder(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{BatchWorkers: 4})
	defer sv.Close()
	qs := s.SampleQuestions(8)
	qs = append(qs, "what is the meaning of life")
	items := sv.AskBatch(context.Background(), qs)
	if len(items) != len(qs) {
		t.Fatalf("got %d items, want %d", len(items), len(qs))
	}
	for i, it := range items {
		if it.Question != qs[i] {
			t.Errorf("slot %d out of order: %q != %q", i, it.Question, qs[i])
		}
		if it.Err != nil {
			t.Errorf("slot %d error: %v", i, it.Err)
		}
	}
	if items[len(items)-1].Answered {
		t.Error("unanswerable question reported answered")
	}
}

func TestSystemAskBatch(t *testing.T) {
	s := testSystem(t)
	qs := s.SampleQuestions(6)
	items := s.AskBatch(context.Background(), qs)
	for i, it := range items {
		want, wantOK := s.Ask(context.Background(), qs[i])
		if it.Answered != wantOK || it.Answer.Value != want.Value {
			t.Errorf("slot %d = (%+v, %v), want (%+v, %v)", i, it.Answer, it.Answered, want, wantOK)
		}
	}
}

// TestSystemAskBatchHonorsCancellation pins the regression kbqa-vet's
// ctxpropagate analyzer caught: AskBatch used to fan out under a fresh
// context.Background(), so cancelling the caller's context changed
// nothing. Now every slot must either fail with the context error or
// never start.
func TestSystemAskBatchHonorsCancellation(t *testing.T) {
	s := testSystem(t)
	qs := s.SampleQuestions(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: no slot may answer
	items := s.AskBatch(ctx, qs)
	if len(items) != len(qs) {
		t.Fatalf("got %d items, want %d", len(items), len(qs))
	}
	for i, it := range items {
		if it.Answered {
			t.Errorf("slot %d answered despite cancelled context", i)
		}
		if !errors.Is(it.Err, context.Canceled) {
			t.Errorf("slot %d error = %v, want context.Canceled", i, it.Err)
		}
	}
}

// TestSystemAskHonorsCancellation: the deprecated Ask shim must forward
// the caller's context into Query (it used to mint its own Background).
func TestSystemAskHonorsCancellation(t *testing.T) {
	s := testSystem(t)
	q := s.SampleQuestions(1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	if _, ok := s.Ask(ctx, q); !ok {
		t.Fatalf("sanity: %q unanswered under a live context", q)
	}
	cancel()
	if _, ok := s.Ask(ctx, q); ok {
		t.Error("Ask answered under a cancelled context")
	}
}

// TestServerConcurrentParity exercises the full serving pipeline from many
// goroutines (run with -race): answers must match the single-threaded
// baseline and the cache counters must balance.
func TestServerConcurrentParity(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{CacheEntries: 32})
	defer sv.Close()
	qs := s.SampleQuestions(12)
	baseline := make([]Answer, len(qs))
	baselineOK := make([]bool, len(qs))
	for i, q := range qs {
		baseline[i], baselineOK[i] = s.Ask(context.Background(), q)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := range qs {
				got, ok, err := sv.Ask(ctx, qs[(g+i)%len(qs)])
				want := baseline[(g+i)%len(qs)]
				wantOK := baselineOK[(g+i)%len(qs)]
				if err != nil || ok != wantOK || got.Value != want.Value {
					t.Errorf("g%d: Ask(%q) = (%q, %v, %v), want (%q, %v)",
						g, qs[(g+i)%len(qs)], got.Value, ok, err, want.Value, wantOK)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	m := sv.Metrics()
	if m.CacheHits+m.CacheMisses != m.Served {
		t.Errorf("hits(%d) + misses(%d) != served(%d)", m.CacheHits, m.CacheMisses, m.Served)
	}
	if m.Stages["total"].Count != m.Served {
		t.Errorf("total stage count %d != served %d", m.Stages["total"].Count, m.Served)
	}
}
