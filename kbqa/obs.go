package kbqa

import (
	"io"

	"repro/internal/obs"
)

// The observability surface of the serving stack, re-exported so callers
// outside the module can configure tracing and structured logging without
// reaching into internal/obs. The aliases are type identities: a
// *kbqa.Logger is a *obs.Logger, so values flow through ServerOptions and
// the internal layers unchanged.

// Logger is the structured leveled JSON logger: one object per line with
// ts/level/msg plus the record's fields. A nil *Logger discards
// everything, so optional logging needs no branches.
type Logger = obs.Logger

// LogField is one structured key/value pair of a log record.
type LogField = obs.Field

// LogF builds a LogField.
func LogF(key string, value any) LogField { return obs.F(key, value) }

// LogLevel is a log severity; records below a Logger's minimum are
// discarded before formatting.
type LogLevel = obs.Level

// Log severities, lowest to highest.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// NewLogger builds a Logger writing JSON lines at or above min to w.
func NewLogger(w io.Writer, min LogLevel) *Logger { return obs.NewLogger(w, min) }

// ParseLogLevel maps a level name ("debug", "info", "warn", "error") to
// its LogLevel, defaulting to LogInfo for anything unrecognized.
func ParseLogLevel(s string) LogLevel { return obs.ParseLevel(s) }

// Tracer samples request traces into a bounded ring buffer; build one
// implicitly through ServerOptions (TraceSampleRate / SlowQueryThreshold /
// TraceBuffer) and read it back with Server.Traces.
type Tracer = obs.Tracer

// TraceSnapshot is one completed, retained trace as served by
// /debug/traces: the trace ID, its wall-clock bounds, and the span tree.
type TraceSnapshot = obs.TraceSnapshot

// SpanSnapshot is one node of a TraceSnapshot's span tree.
type SpanSnapshot = obs.SpanSnapshot
