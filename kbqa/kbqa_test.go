package kbqa

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	sys     *System
)

func testSystem(t testing.TB) *System {
	t.Helper()
	sysOnce.Do(func() {
		s, err := Build(Options{Flavor: "freebase", Seed: 42, Scale: 30, PairsPerIntent: 40})
		if err != nil {
			panic(err)
		}
		sys = s
	})
	return sys
}

func TestBuildFlavors(t *testing.T) {
	if _, err := Build(Options{Flavor: "klingon"}); err == nil {
		t.Error("expected error for unknown flavor")
	}
	for _, f := range []string{"", "kba", "freebase", "dbpedia", "FB", "dbp"} {
		if _, err := ParseFlavor(f); err != nil {
			t.Errorf("ParseFlavor(%q) failed: %v", f, err)
		}
	}
}

func TestAskSampleQuestions(t *testing.T) {
	s := testSystem(t)
	qs := s.SampleQuestions(30)
	if len(qs) != 30 {
		t.Fatalf("got %d sample questions", len(qs))
	}
	answered := 0
	for _, q := range qs {
		if ans, ok := s.Ask(context.Background(), q); ok {
			answered++
			if ans.Value == "" || ans.Predicate == "" || ans.Template == "" {
				t.Errorf("incomplete answer for %q: %+v", q, ans)
			}
		}
	}
	if answered < 25 {
		t.Errorf("answered only %d/30 sample questions", answered)
	}
}

func TestAskUnanswerable(t *testing.T) {
	s := testSystem(t)
	if _, ok := s.Ask(context.Background(), "what is the airspeed velocity of an unladen swallow?"); ok {
		t.Error("answered an out-of-domain question")
	}
}

func TestComplexQuestionsAPI(t *testing.T) {
	s := testSystem(t)
	cqs := s.ComplexQuestions(7, 10)
	if len(cqs) == 0 {
		t.Fatal("no complex questions composed")
	}
	hits := 0
	for _, cq := range cqs {
		ans, ok := s.Ask(context.Background(), cq.Q)
		if !ok {
			continue
		}
		gold := make(map[string]bool)
		for _, g := range cq.GoldAnswers {
			gold[g] = true
		}
		for _, v := range append(ans.Values, ans.Value) {
			if gold[v] {
				hits++
				break
			}
		}
	}
	if hits == 0 {
		t.Error("no complex question answered correctly through the public API")
	}
}

func TestStats(t *testing.T) {
	s := testSystem(t)
	st := s.Stats()
	if st.Flavor != "Freebase" || st.Entities == 0 || st.Triples == 0 ||
		st.Templates == 0 || st.Intents == 0 || st.CorpusSize == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

func TestSaveLoadModel(t *testing.T) {
	s := testSystem(t)
	var buf bytes.Buffer
	if err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Templates
	if err := s.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Templates != before {
		t.Error("model round trip changed template count")
	}
	// Still answers after reload.
	qs := s.SampleQuestions(5)
	ok := false
	for _, q := range qs {
		if _, o := s.Ask(context.Background(), q); o {
			ok = true
		}
	}
	if !ok {
		t.Error("system stopped answering after model reload")
	}
	if err := s.LoadModel(strings.NewReader("garbage")); err == nil {
		t.Error("expected error loading garbage model")
	}
}

func TestFallbackAndBaselines(t *testing.T) {
	s := testSystem(t)
	syn, err := s.BuiltinBaseline("synonym")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuiltinBaseline("kbqa"); err == nil {
		t.Error("kbqa must not be its own fallback")
	}
	if _, err := s.BuiltinBaseline("nope"); err == nil {
		t.Error("expected error for unknown baseline")
	}
	hybrid := s.Fallback(syn)
	// A question KBQA answers: hybrid result carries the predicate.
	q := s.SampleQuestions(1)[0]
	if ans, ok := hybrid(context.Background(), q); !ok || ans.Predicate == "" {
		t.Errorf("hybrid lost the primary answer for %q", q)
	}
	// A question nobody answers.
	if _, ok := hybrid(context.Background(), "how do magnets work?"); ok {
		t.Error("hybrid answered the unanswerable")
	}
}

// TestBaselineHonorsCancellation pins the regression kbqa-vet's
// ctxpropagate analyzer caught on the variant eval path: BuiltinBaseline
// closures used to evaluate under a fresh context.Background(); now the
// caller's context reaches the baseline adapter, which refuses to answer
// once it is cancelled.
func TestBaselineHonorsCancellation(t *testing.T) {
	s := testSystem(t)
	syn, err := s.BuiltinBaseline("synonym")
	if err != nil {
		t.Fatal(err)
	}
	q := s.SampleQuestions(1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := syn(ctx, q); ok {
		t.Error("baseline answered under a cancelled context")
	}
	if _, ok := s.Fallback(syn)(ctx, q); ok {
		t.Error("hybrid answered under a cancelled context")
	}
}

func TestAskVariant(t *testing.T) {
	s := testSystem(t)
	ans, ok := s.AskVariant("Which city has the largest population?")
	if !ok {
		t.Fatal("ranking variant not answered")
	}
	if ans.Kind != "ranking" || ans.Predicate != "population" || len(ans.Entities) != 1 {
		t.Fatalf("answer = %+v", ans)
	}
	list, ok := s.AskVariant("List cities ordered by population?")
	if !ok || list.Kind != "listing" || len(list.Entities) < 2 {
		t.Fatalf("listing = %+v ok=%v", list, ok)
	}
	// The largest city heads the listing.
	if list.Entities[0] != ans.Entities[0] {
		t.Errorf("ranking and listing disagree: %q vs %q", ans.Entities[0], list.Entities[0])
	}
	if _, ok := s.AskVariant("what is love?"); ok {
		t.Error("non-variant answered")
	}
}

func TestLearnCustomCorpus(t *testing.T) {
	// Build a tiny fresh system (not the shared one: Learn mutates).
	s, err := Build(Options{Flavor: "dbpedia", Seed: 7, Scale: 12, PairsPerIntent: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Retrain on a subset of its own corpus: must stay functional.
	pairs := s.TrainingCorpus()
	if len(pairs) < 10 {
		t.Fatal("corpus too small")
	}
	s.Learn(pairs[:len(pairs)/2])
	if s.Stats().Templates == 0 {
		t.Fatal("Learn produced an empty model")
	}
	answered := false
	for _, q := range s.SampleQuestions(20) {
		if _, ok := s.Ask(context.Background(), q); ok {
			answered = true
			break
		}
	}
	if !answered {
		t.Error("system answers nothing after retraining")
	}
}
