// Package kbqa is the public API of the KBQA reproduction: template-based
// question answering over an RDF knowledge base, learned from a QA corpus
// (Cui et al., "KBQA: Learning Question Answering over QA Corpora and
// Knowledge Bases", VLDB 2017).
//
// The quickest way in is Build, which synthesizes a knowledge base and QA
// corpus (the library's stand-ins for Freebase/DBpedia and Yahoo! Answers),
// runs the full offline procedure — joint entity–value extraction, EM
// estimation of P(p|t), predicate expansion and decomposition statistics —
// and returns a ready-to-ask System:
//
//	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase"})
//	ans, ok := sys.Ask("What is the population of Dunford?")
//
// Ask handles both binary factoid questions and complex questions composed
// of a chain of them ("When was X's wife born?"). For corpora of your own,
// see System.Learn.
package kbqa

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/decompose"
	"repro/internal/eval"
	"repro/internal/kbgen"
	"repro/internal/learn"
	"repro/internal/text"
)

// Options configures Build.
type Options struct {
	// Flavor selects the synthetic knowledge base: "kba", "freebase"
	// (default) or "dbpedia".
	Flavor string
	// Seed drives all generation; equal seeds give identical systems.
	Seed int64
	// Scale is the base number of entities per category (default 30).
	Scale int
	// PairsPerIntent sizes the training corpus (default 40).
	PairsPerIntent int
	// NoiseRate is the fraction of corrupted training pairs (default 0.15).
	NoiseRate float64
	// Shards selects the knowledge-base layout: > 1 partitions the RDF
	// store into that many subject-hash shards (offline expansion scans
	// one worker per shard; online probes hash to their shard), 1 forces
	// the single-map store, and 0 keeps the default (sharded). Answers
	// are identical across layouts.
	Shards int
}

// ParseFlavor converts a flavor name to the kbgen flavor.
func ParseFlavor(name string) (kbgen.Flavor, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "freebase", "fb":
		return kbgen.Freebase, nil
	case "kba":
		return kbgen.KBA, nil
	case "dbpedia", "dbp":
		return kbgen.DBpedia, nil
	default:
		return 0, fmt.Errorf("kbqa: unknown flavor %q (want kba, freebase, or dbpedia)", name)
	}
}

// Step is one hop of an answered complex question.
type Step struct {
	// Question is the bound BFQ whose answer won the step; Questions
	// lists every bound BFQ the step actually executed (execution fans
	// out over all values of the previous step).
	Question  string
	Questions []string
	Template  string
	Predicate string
	Value     string
}

// Answer is a successful reply.
type Answer struct {
	// Value is the argmax answer.
	Value string
	// Values is the full value set of the winning interpretation (band
	// members, etc.).
	Values []string
	// Predicate is the knowledge-base predicate the question mapped to,
	// in arrow notation for expanded predicates.
	Predicate string
	// Template is the learned template that matched.
	Template string
	// Score is the (unnormalized) probability mass of Value.
	Score float64
	// Steps traces complex-question execution (empty for plain BFQs).
	Steps []Step
}

// System is a trained KBQA instance.
type System struct {
	world *eval.World
}

// Build synthesizes a world and runs the complete offline procedure.
func Build(o Options) (*System, error) {
	f, err := ParseFlavor(o.Flavor)
	if err != nil {
		return nil, err
	}
	cfg := eval.DefaultWorldConfig(f)
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Scale > 0 {
		cfg.Scale = o.Scale
	}
	if o.PairsPerIntent > 0 {
		cfg.PairsPerIntent = o.PairsPerIntent
	}
	if o.NoiseRate > 0 {
		cfg.NoiseRate = o.NoiseRate
	}
	if o.Shards != 0 {
		cfg.Shards = o.Shards
	}
	return &System{world: eval.BuildWorld(cfg)}, nil
}

// Ask answers a question (BFQ or complex). ok is false when the system has
// no answer, the behaviour a hybrid deployment uses to fall back to
// another QA engine (see Fallback).
func (s *System) Ask(question string) (Answer, bool) {
	ans, ok := s.world.Engine.Answer(question)
	if !ok {
		return Answer{}, false
	}
	return answerFromCore(ans), true
}

// VariantAnswer is the reply to a ranking, comparison or listing question.
type VariantAnswer struct {
	// Kind is "ranking", "comparison" or "listing".
	Kind string
	// Entities are the winning entities (the ordered list, for listing).
	Entities []string
	// Values aligns with Entities: the predicate values that ranked them.
	Values []string
	// Predicate is the predicate the variant aggregated over.
	Predicate string
}

// AskVariant answers the BFQ variants of the paper's introduction:
// ranking ("which city has the 3rd largest population?"), comparison
// ("which city has more people, A or B?") and listing ("list cities
// ordered by population"). The grounding reuses the learned templates, so
// variants need no extra training.
func (s *System) AskVariant(question string) (VariantAnswer, bool) {
	va, ok := s.world.Engine.AnswerVariant(question)
	if !ok {
		return VariantAnswer{}, false
	}
	return VariantAnswer{
		Kind:      va.Kind.String(),
		Entities:  va.Entities,
		Values:    va.Values,
		Predicate: va.Path,
	}, true
}

// QA is one question–answer pair of a training corpus.
type QA = learn.QA

// Learn re-runs the offline learning over a caller-supplied QA corpus
// against this system's knowledge base, replacing the current model. Use
// it to train on your own data instead of the synthetic corpus.
func (s *System) Learn(pairs []QA) {
	learner := s.world.Learner()
	s.world.Model = learner.Learn(pairs)
	qs := make([]string, len(pairs))
	for i, p := range pairs {
		qs[i] = p.Q
	}
	s.world.Stats = decompose.BuildStats(qs, func(toks []string, sp text.Span) bool {
		return len(s.world.KB.Store.EntitiesByLabel(text.Join(text.CutSpan(toks, sp)))) > 0
	})
	s.world.Engine = core.NewEngine(s.world.KB.Store, s.world.KB.Taxonomy, s.world.Model, s.world.Stats)
}

// TrainingCorpus returns the synthetic QA corpus the system was built with,
// useful as a template for the Learn input format.
func (s *System) TrainingCorpus() []QA {
	out := make([]QA, len(s.world.Pairs))
	for i, p := range s.world.Pairs {
		out[i] = QA{Q: p.Q, A: p.A}
	}
	return out
}

// SaveModel serializes the learned P(p|t) model.
func (s *System) SaveModel(w io.Writer) error { return s.world.Model.Save(w) }

// LoadModel replaces the learned model with one written by SaveModel and
// rewires the online engine.
func (s *System) LoadModel(r io.Reader) error {
	m, err := learn.LoadModel(r)
	if err != nil {
		return err
	}
	s.world.Model = m
	s.world.Engine = core.NewEngine(s.world.KB.Store, s.world.KB.Taxonomy, m, s.world.Stats)
	return nil
}

// Stats summarizes the system.
type Stats struct {
	Flavor     string
	Entities   int
	Triples    int
	Predicates int // distinct predicate names in the KB
	Templates  int // learned templates
	Intents    int // learned predicates (direct + expanded)
	CorpusSize int
}

// Stats reports the system's sizes.
func (s *System) Stats() Stats {
	return Stats{
		Flavor:     s.world.KB.Flavor.String(),
		Entities:   len(s.world.KB.Store.Entities()),
		Triples:    s.world.KB.Store.NumTriples(),
		Predicates: s.world.KB.Store.NumPredicates(),
		Templates:  s.world.Model.NumTemplates(),
		Intents:    s.world.Model.NumPredicates(),
		CorpusSize: len(s.world.Pairs),
	}
}

// SampleQuestions returns n answerable questions drawn from the training
// corpus (deduplicated), handy for demos and smoke tests.
func (s *System) SampleQuestions(n int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range s.world.Pairs {
		if p.Noise || seen[p.Q] {
			continue
		}
		seen[p.Q] = true
		out = append(out, p.Q)
		if len(out) == n {
			break
		}
	}
	return out
}

// ComplexQuestions composes n two-hop complex questions over the system's
// knowledge base, each with its acceptable gold answers.
func (s *System) ComplexQuestions(seed int64, n int) []ComplexQuestion {
	var out []ComplexQuestion
	for _, cp := range corpus.ComposeComplex(s.world.KB, seed, n) {
		out = append(out, ComplexQuestion{Q: cp.Q, GoldAnswers: cp.GoldAnswers})
	}
	return out
}

// ComplexQuestion is a generated complex question with gold answers.
type ComplexQuestion struct {
	Q           string
	GoldAnswers []string
}

// Fallback composes this system with a secondary QA system: questions KBQA
// cannot answer are forwarded (the hybrid scheme of Sec 7.3.1). The
// returned function answers like Ask.
func (s *System) Fallback(secondary func(q string) (string, bool)) func(q string) (Answer, bool) {
	return func(q string) (Answer, bool) {
		if ans, ok := s.Ask(q); ok {
			return ans, true
		}
		if v, ok := secondary(q); ok {
			return Answer{Value: v}, true
		}
		return Answer{}, false
	}
}

// BuiltinBaseline returns one of the reimplemented comparison systems
// ("keyword", "synonym", "graph", "rule") wired to this system's knowledge
// base; it answers via the same Ask-like contract and is the natural
// secondary for Fallback.
func (s *System) BuiltinBaseline(name string) (func(q string) (string, bool), error) {
	sys, ok := s.world.Systems[name]
	if !ok || name == "kbqa" {
		return nil, fmt.Errorf("kbqa: unknown baseline %q (want keyword, synonym, graph, or rule)", name)
	}
	return func(q string) (string, bool) {
		res, ok := sys.Answer(q)
		if !ok {
			return "", false
		}
		return res.Value, true
	}, nil
}

var _ = baseline.Result{} // the Systems map above carries baseline.System values
