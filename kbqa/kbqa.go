// Package kbqa is the public API of the KBQA reproduction: template-based
// question answering over an RDF knowledge base, learned from a QA corpus
// (Cui et al., "KBQA: Learning Question Answering over QA Corpora and
// Knowledge Bases", VLDB 2017).
//
// The quickest way in is Build, which synthesizes a knowledge base and QA
// corpus (the library's stand-ins for Freebase/DBpedia and Yahoo! Answers),
// runs the full offline procedure — joint entity–value extraction, EM
// estimation of P(p|t), predicate expansion and decomposition statistics —
// and returns a ready System. Query is the single online entry point: it
// auto-routes binary factoid, complex (multi-hop) and
// ranking/comparison/listing questions, honours context cancellation down
// to the knowledge-base probe loops, and returns the top-K ranked
// interpretations alongside the answer:
//
//	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase"})
//	res, err := sys.Query(ctx, "What is the population of Dunford?",
//	    kbqa.WithTopK(5))
//	// res.Answer, res.Interpretations, res.Timings
//
// Failures are typed — ErrNoEntity, ErrNoTemplate, ErrNoAnswer, or the
// context's own error — so callers can tell "unanswerable" from "timed
// out" (see ErrorCode). Systems compose through the Answerer interface:
// Chain(sys, fallback) implements the paper's hybrid deployments over any
// mix of KBQA systems, baselines (Baseline) and servers.
//
// The legacy Ask/AskVariant/Fallback/BuiltinBaseline entry points remain
// as deprecated shims over Query. For corpora of your own, see
// System.Learn; for serving traffic, System.Server.
package kbqa

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/decompose"
	"repro/internal/eval"
	"repro/internal/kbgen"
	"repro/internal/learn"
	"repro/internal/rdf"
	"repro/internal/rdf/snapshot"
	"repro/internal/shardrpc"
	"repro/internal/text"
)

// Options configures Build. The zero value builds the default Freebase
// world.
type Options struct {
	// Flavor selects the synthetic knowledge base: "kba", "freebase"
	// (default) or "dbpedia".
	Flavor string
	// Seed drives all generation; equal seeds give identical systems.
	Seed int64
	// Scale is the base number of entities per category (default 30).
	Scale int
	// PairsPerIntent sizes the training corpus (default 40).
	PairsPerIntent int
	// NoiseRate is the fraction of corrupted training pairs. nil keeps
	// the default (0.15); Noise(0) requests a noise-free corpus — a
	// pointer rather than a float so the zero value stays distinguishable
	// from "use the default".
	NoiseRate *float64
	// Shards selects the knowledge-base layout: > 1 partitions the RDF
	// store into that many subject-hash shards (offline expansion scans
	// one worker per shard; online probes hash to their shard), 1 forces
	// the single-map store, and 0 keeps the default (sharded). Answers
	// are identical across layouts.
	Shards int
	// ShardServers, when non-empty, distributes the knowledge base: index
	// reads (probes, scans) are served by remote kbqa-shard processes at
	// these addresses instead of the local store, scatter/gathered with
	// consistent-hash placement, hedged requests, and replica failover.
	// Every server must have loaded the same world (same flavor, seed,
	// scale, and shard count — enforced by a fingerprint handshake).
	// Requires a sharded layout (Shards != 1). Answers are byte-identical
	// to the single-process layouts.
	ShardServers []string
	// ShardReplicas is the replication factor of the shard placement
	// (default 2, clamped to len(ShardServers)).
	ShardReplicas int
	// KBImage, when non-empty, memory-maps a knowledge-base snapshot
	// image (written by SaveKBImage or kbqa-shard -kb-save) and serves
	// all index reads from it instead of the generated store. The image
	// must hold exactly the world the other options describe — its
	// fingerprint is checked against the built store and a mismatch
	// fails Build. Requires a sharded layout (Shards != 1) and is
	// mutually exclusive with ShardServers. Answers are byte-identical
	// to the in-memory layouts; Close unmaps the image.
	KBImage string
}

// Noise returns a NoiseRate option value; Noise(0) requests a noise-free
// training corpus.
func Noise(rate float64) *float64 { return &rate }

// ParseFlavor converts a flavor name to the kbgen flavor.
func ParseFlavor(name string) (kbgen.Flavor, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "freebase", "fb":
		return kbgen.Freebase, nil
	case "kba":
		return kbgen.KBA, nil
	case "dbpedia", "dbp":
		return kbgen.DBpedia, nil
	default:
		return 0, fmt.Errorf("kbqa: unknown flavor %q (want kba, freebase, or dbpedia)", name)
	}
}

// worldConfig resolves Options onto the per-flavor defaults; every zero
// field keeps its default, and NoiseRate distinguishes "unset" (nil) from
// an explicit 0 so noise-free corpora are expressible.
func (o Options) worldConfig() (eval.WorldConfig, error) {
	f, err := ParseFlavor(o.Flavor)
	if err != nil {
		return eval.WorldConfig{}, err
	}
	cfg := eval.DefaultWorldConfig(f)
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Scale > 0 {
		cfg.Scale = o.Scale
	}
	if o.PairsPerIntent > 0 {
		cfg.PairsPerIntent = o.PairsPerIntent
	}
	if o.NoiseRate != nil {
		cfg.NoiseRate = *o.NoiseRate
	}
	if o.Shards != 0 {
		cfg.Shards = o.Shards
	}
	return cfg, nil
}

// Step is one hop of an answered complex question.
type Step struct {
	// Question is the bound BFQ whose answer won the step; Questions
	// lists every bound BFQ the step actually executed (execution fans
	// out over all values of the previous step).
	Question  string   `json:"question"`
	Questions []string `json:"questions,omitempty"`
	Template  string   `json:"template,omitempty"`
	Predicate string   `json:"predicate,omitempty"`
	Value     string   `json:"value,omitempty"`
}

// Answer is a successful BFQ / complex-question reply.
type Answer struct {
	// Value is the argmax answer.
	Value string `json:"value"`
	// Values is the full value set of the winning interpretation (band
	// members, etc.).
	Values []string `json:"values,omitempty"`
	// Predicate is the knowledge-base predicate the question mapped to,
	// in arrow notation for expanded predicates.
	Predicate string `json:"predicate,omitempty"`
	// Template is the learned template that matched.
	Template string `json:"template,omitempty"`
	// Score is the (unnormalized) probability mass of Value.
	Score float64 `json:"score,omitempty"`
	// Steps traces complex-question execution (empty for plain BFQs).
	Steps []Step `json:"steps,omitempty"`
}

// VariantAnswer is the reply to a ranking, comparison or listing question.
type VariantAnswer struct {
	// Kind is "ranking", "comparison" or "listing".
	Kind string `json:"kind"`
	// Entities are the winning entities (the ordered list, for listing).
	Entities []string `json:"entities"`
	// Values aligns with Entities: the predicate values that ranked them.
	Values []string `json:"values"`
	// Predicate is the predicate the variant aggregated over.
	Predicate string `json:"predicate"`
}

// System is a trained KBQA instance. It implements Answerer. Query and the
// other read paths may be used concurrently with Learn/LoadModel: model
// swaps are atomic behind a read-write lock, and in-flight queries finish
// against the engine they started with.
type System struct {
	mu    sync.RWMutex // guards the world's Model/Stats/Engine swaps and retrain
	world *eval.World
	// kb is the graph engines are built over: the local store, or the
	// shardrpc adapter when Options.ShardServers distributed the KB. Set
	// once in Build, immutable afterwards.
	kb rdf.Graph
	// pool is the shard-server client when distributed (nil otherwise);
	// Close releases it.
	pool *shardrpc.Pool
	// img is the memory-mapped snapshot image when Options.KBImage
	// loaded one (nil otherwise); Close unmaps it.
	img *snapshot.Image
	// retrain holds invalidation hooks run after every model swap, keyed
	// for deregistration; a Server registers one to bump its cache
	// generation, so answers computed by the old model become unreachable
	// the moment Learn/LoadModel returns, and removes it on Close.
	retrain    map[uint64]func()
	nextHookID uint64
	// retrainEpoch counts completed model swaps; Server uses it to close
	// the construction race between adopting a persisted generation and
	// registering its hook.
	retrainEpoch atomic.Uint64
}

// Build synthesizes a world and runs the complete offline procedure. With
// Options.ShardServers set, the online engine is then rebuilt over the
// remote shard pool: the locally built world keeps supplying the interning
// tables and the trained model, while knowledge-base index reads go over
// the network.
func Build(o Options) (*System, error) {
	cfg, err := o.worldConfig()
	if err != nil {
		return nil, err
	}
	if o.KBImage != "" && len(o.ShardServers) > 0 {
		return nil, fmt.Errorf("kbqa: KBImage and ShardServers are mutually exclusive")
	}
	s := &System{world: eval.BuildWorld(cfg)}
	s.kb = s.world.KB.Store
	if err := s.wire(o); err != nil {
		//kbqa:nolint errsink — error-path release of whatever wiring already acquired; the build error is the one to surface
		s.Close()
		return nil, err
	}
	return s, nil
}

// wire attaches the optional external KB backing — a memory-mapped
// snapshot image or a shard-server pool. On error the System may hold
// partially acquired resources; Build releases them via Close.
func (s *System) wire(o Options) error {
	if len(o.ShardServers) > 0 {
		if err := s.connectShards(o); err != nil {
			return err
		}
	}
	if o.KBImage != "" {
		if err := s.openImage(o.KBImage); err != nil {
			return err
		}
	}
	return nil
}

// openImage rebinds the system's online engine to a memory-mapped
// snapshot image of the world it just built. The image is opened with the
// built store's fingerprint and shard count as expectations, so a stale or
// foreign image fails here instead of answering from the wrong world.
func (s *System) openImage(path string) error {
	ss, ok := s.world.KB.Store.(rdf.Sharded)
	if !ok {
		return fmt.Errorf("kbqa: KBImage requires a sharded knowledge base (Shards != 1)")
	}
	im, err := snapshot.OpenImage(path, snapshot.OpenOptions{
		ExpectFingerprint: rdf.WorldFingerprint(ss, ss.NumShards()),
		ExpectShards:      ss.NumShards(),
	})
	if err != nil {
		return fmt.Errorf("kbqa: open KB image: %w", err)
	}
	s.img = im
	s.kb = im
	s.world.Engine = core.NewEngine(s.kb, s.world.KB.Taxonomy, s.world.Model, s.world.Stats)
	return nil
}

// SaveKBImage writes the knowledge base as a snapshot image: a binary,
// offset-based file that OpenImage (and Options.KBImage, kbqa-shard
// -kb-image) maps read-only for instant boot. The write is atomic — the
// image appears under path complete or not at all.
func (s *System) SaveKBImage(path string) error {
	ss, ok := s.world.KB.Store.(rdf.Sharded)
	if !ok {
		return fmt.Errorf("kbqa: SaveKBImage requires a sharded knowledge base (Shards != 1)")
	}
	return snapshot.WriteImageFile(path, ss)
}

// connectShards rewires the system's online engine over a shardrpc pool.
func (s *System) connectShards(o Options) error {
	ss, ok := s.world.KB.Store.(rdf.Sharded)
	if !ok {
		return fmt.Errorf("kbqa: ShardServers requires a sharded knowledge base (Shards != 1)")
	}
	replicas := o.ShardReplicas
	if replicas <= 0 {
		replicas = 2
	}
	pl, err := shardrpc.NewPlacement(o.ShardServers, ss.NumShards(), replicas)
	if err != nil {
		return err
	}
	pool, err := shardrpc.NewPool(shardrpc.PoolOptions{
		Placement:   pl,
		Fingerprint: shardrpc.Fingerprint(ss, ss.NumShards()),
	})
	if err != nil {
		return err
	}
	s.pool = pool
	s.kb = shardrpc.NewKB(ss, pool)
	s.world.Engine = core.NewEngine(s.kb, s.world.KB.Taxonomy, s.world.Model, s.world.Stats)
	return nil
}

// Close releases the system's external resources — the shard-server
// connection pool of a distributed KB, and the memory mapping of a
// snapshot image. Safe (and a no-op) on a single-process in-memory
// system; the system must not be queried afterwards. The returned error
// is the image unmap result: munmap failure means the mapping (and its
// address space) is still live, which the caller may care about.
func (s *System) Close() error {
	if s.pool != nil {
		s.pool.Close()
	}
	if s.img != nil {
		return s.img.Close()
	}
	return nil
}

// engine snapshots the current online engine; queries run against the
// snapshot so a concurrent Learn cannot swap state mid-question.
func (s *System) engine() *core.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.world.Engine
}

// onRetrain registers fn to run after every model swap (Learn, LoadModel)
// and returns its deregistration, which the owner must call when it stops
// caring (Server.Close does) so dead hooks don't accumulate on a
// long-lived system.
func (s *System) onRetrain(fn func()) (remove func()) {
	s.mu.Lock()
	if s.retrain == nil {
		s.retrain = make(map[uint64]func())
	}
	id := s.nextHookID
	s.nextHookID++
	s.retrain[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.retrain, id)
		s.mu.Unlock()
	}
}

// notifyRetrain advances the retrain epoch and runs the registered
// invalidation hooks. It is called after the engine swap is visible, so a
// hook that bumps a cache generation guarantees every request keyed with
// the new generation computes against the new model (or a newer one) —
// never the old.
func (s *System) notifyRetrain() {
	s.retrainEpoch.Add(1)
	s.mu.RLock()
	hooks := make([]func(), 0, len(s.retrain))
	for _, fn := range s.retrain {
		hooks = append(hooks, fn)
	}
	s.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Ask answers a question (BFQ or complex). ok is false when the system has
// no answer. The caller's context flows into Query, so cancellation and
// trace IDs propagate exactly as they do for Query itself.
//
// Deprecated: use Query, which distinguishes the failure modes Ask
// collapses into false and surfaces the ranked interpretations. Ask
// remains as a shim and returns exactly the answer Query's Result.Answer
// carries.
func (s *System) Ask(ctx context.Context, question string) (Answer, bool) {
	res, err := s.Query(ctx, question, WithoutVariants(), WithTopK(0))
	if err != nil || res.Answer == nil {
		return Answer{}, false
	}
	return *res.Answer, true
}

// AskVariant answers the BFQ variants of the paper's introduction:
// ranking, comparison and listing questions.
//
// Deprecated: use Query, which auto-routes variants (Result.Variant) and
// reports why a question failed instead of a bare false.
func (s *System) AskVariant(question string) (VariantAnswer, bool) {
	va, ok := s.engine().AnswerVariant(question)
	if !ok {
		return VariantAnswer{}, false
	}
	return variantFromCore(va), true
}

// QA is one question–answer pair of a training corpus.
type QA = learn.QA

// Learn re-runs the offline learning over a caller-supplied QA corpus
// against this system's knowledge base, replacing the current model. Use
// it to train on your own data instead of the synthetic corpus. Learn is
// safe to call while the system is answering: the heavy learning runs
// outside the lock and the model/engine swap is atomic, with concurrent
// queries finishing against whichever engine they started with. Servers
// built from this system invalidate their answer caches the moment Learn
// returns — the model generation keying cache entries is bumped after the
// swap, so no later query is served an answer the old model computed.
func (s *System) Learn(pairs []QA) {
	learner := s.world.Learner()
	model := learner.Learn(pairs)
	qs := make([]string, len(pairs))
	for i, p := range pairs {
		qs[i] = p.Q
	}
	stats := decompose.BuildStats(qs, func(toks []string, sp text.Span) bool {
		return len(s.world.KB.Store.EntitiesByLabel(text.Join(text.CutSpan(toks, sp)))) > 0
	})
	engine := core.NewEngine(s.kb, s.world.KB.Taxonomy, model, stats)

	s.mu.Lock()
	s.world.Model = model
	s.world.Stats = stats
	s.world.Engine = engine
	s.mu.Unlock()
	s.notifyRetrain()
}

// TrainingCorpus returns the synthetic QA corpus the system was built with,
// useful as a template for the Learn input format.
func (s *System) TrainingCorpus() []QA {
	out := make([]QA, len(s.world.Pairs))
	for i, p := range s.world.Pairs {
		out[i] = QA{Q: p.Q, A: p.A}
	}
	return out
}

// SaveModel serializes the learned P(p|t) model.
func (s *System) SaveModel(w io.Writer) error {
	s.mu.RLock()
	m := s.world.Model
	s.mu.RUnlock()
	return m.Save(w)
}

// LoadModel replaces the learned model with one written by SaveModel and
// rewires the online engine; like Learn, the swap is atomic under
// concurrent queries and attached Servers invalidate their caches before
// LoadModel returns.
func (s *System) LoadModel(r io.Reader) error {
	m, err := learn.LoadModel(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.world.Model = m
	s.world.Engine = core.NewEngine(s.kb, s.world.KB.Taxonomy, m, s.world.Stats)
	s.mu.Unlock()
	s.notifyRetrain()
	return nil
}

// Stats summarizes the system.
type Stats struct {
	Flavor     string
	Entities   int
	Triples    int
	Predicates int // distinct predicate names in the KB
	Templates  int // learned templates
	Intents    int // learned predicates (direct + expanded)
	CorpusSize int
}

// Stats reports the system's sizes.
func (s *System) Stats() Stats {
	s.mu.RLock()
	model := s.world.Model
	s.mu.RUnlock()
	return Stats{
		Flavor:     s.world.KB.Flavor.String(),
		Entities:   len(s.world.KB.Store.Entities()),
		Triples:    s.world.KB.Store.NumTriples(),
		Predicates: s.world.KB.Store.NumPredicates(),
		Templates:  model.NumTemplates(),
		Intents:    model.NumPredicates(),
		CorpusSize: len(s.world.Pairs),
	}
}

// SampleQuestions returns n answerable questions drawn from the training
// corpus (deduplicated), handy for demos and smoke tests.
func (s *System) SampleQuestions(n int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range s.world.Pairs {
		if p.Noise || seen[p.Q] {
			continue
		}
		seen[p.Q] = true
		out = append(out, p.Q)
		if len(out) == n {
			break
		}
	}
	return out
}

// ComplexQuestions composes n two-hop complex questions over the system's
// knowledge base, each with its acceptable gold answers.
func (s *System) ComplexQuestions(seed int64, n int) []ComplexQuestion {
	var out []ComplexQuestion
	for _, cp := range corpus.ComposeComplex(s.world.KB, seed, n) {
		out = append(out, ComplexQuestion{Q: cp.Q, GoldAnswers: cp.GoldAnswers})
	}
	return out
}

// ComplexQuestion is a generated complex question with gold answers.
type ComplexQuestion struct {
	Q           string
	GoldAnswers []string
}

// Fallback composes this system with a secondary QA system: questions KBQA
// cannot answer are forwarded (the hybrid scheme of Sec 7.3.1). The
// returned function answers like Ask and threads its context through both
// stages.
//
// Deprecated: use Chain, which composes any number of Answerers, keeps
// typed errors, and aborts on context expiry instead of burning the
// remaining budget on fallbacks.
func (s *System) Fallback(secondary func(ctx context.Context, q string) (string, bool)) func(ctx context.Context, q string) (Answer, bool) {
	return func(ctx context.Context, q string) (Answer, bool) {
		if ans, ok := s.Ask(ctx, q); ok {
			return ans, true
		}
		if v, ok := secondary(ctx, q); ok {
			return Answer{Value: v}, true
		}
		return Answer{}, false
	}
}

// BuiltinBaseline returns one of the reimplemented comparison systems
// ("keyword", "synonym", "graph", "rule") with an Ask-like contract; the
// caller's context flows into each evaluation.
//
// Deprecated: use Baseline, which returns the same system as an Answerer
// for composition with Chain.
func (s *System) BuiltinBaseline(name string) (func(ctx context.Context, q string) (string, bool), error) {
	a, err := s.Baseline(name)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, q string) (string, bool) {
		res, err := a.Query(ctx, q)
		if err != nil || res.Answer == nil {
			return "", false
		}
		return res.Answer.Value, true
	}, nil
}
