package kbqa

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestServerQueryMatchesSystemQuery(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	ctx := context.Background()
	for _, q := range s.SampleQuestions(8) {
		want, wantErr := s.Query(ctx, q, WithTopK(3))
		for round := 0; round < 2; round++ { // second round is a cache hit
			got, err := sv.Query(ctx, q, WithTopK(3))
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("Query(%q) round %d err = %v, system err = %v", q, round, err, wantErr)
			}
			if err != nil {
				continue
			}
			if got.Answer == nil || !reflect.DeepEqual(*got.Answer, *want.Answer) ||
				!reflect.DeepEqual(got.Interpretations, want.Interpretations) {
				t.Fatalf("Query(%q) round %d diverges:\n server: %+v\n system: %+v", q, round, got, want)
			}
		}
	}
	if m := sv.Metrics(); m.CacheHits == 0 {
		t.Error("second round should have hit the cache")
	}
}

// TestServerQueryFingerprintSeparation: the same question under different
// options must not share a cache entry — each option set sees its own
// interpretation count.
func TestServerQueryFingerprintSeparation(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	ctx := context.Background()
	q := s.SampleQuestions(1)[0]

	one, err := sv.Query(ctx, q, WithTopK(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := sv.Query(ctx, q, WithTopK(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Interpretations) != 1 {
		t.Errorf("k=1 returned %d interpretations", len(one.Interpretations))
	}
	if len(wide.Interpretations) < 1 {
		t.Errorf("k=8 returned no interpretations: %+v", wide)
	}
	// Two distinct cache entries were created, one per fingerprint; had the
	// k=8 call hit the k=1 entry it would carry a single interpretation
	// whenever the question has more than one candidate.
	if m := sv.Metrics(); m.CacheEntries < 2 {
		t.Errorf("fingerprints shared a cache entry: %+v", m)
	}
	// Both answers agree regardless of K.
	if !reflect.DeepEqual(one.Answer, wide.Answer) {
		t.Errorf("answer depends on K: %+v vs %+v", one.Answer, wide.Answer)
	}
}

// TestServerQueryTypedErrorsCached: unanswerable questions return typed
// errors, the negative result is cached (one engine call), and the error
// code lands in the labelled metrics.
func TestServerQueryTypedErrorsCached(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sv.Query(ctx, "why is the sky blue at noon"); !errors.Is(err, ErrNoEntity) {
			t.Fatalf("round %d err = %v, want ErrNoEntity", i, err)
		}
	}
	m := sv.Metrics()
	if m.CacheHits < 2 {
		t.Errorf("negative result not cached: %+v", m)
	}
	if m.Errors[CodeNoEntity] != 3 {
		t.Errorf("no_entity count = %d, want 3: %+v", m.Errors[CodeNoEntity], m.Errors)
	}

	var b strings.Builder
	if err := sv.WriteMetricsPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `kbqa_query_errors_total{code="no_entity"} 3`) {
		t.Errorf("Prometheus exposition missing the labelled error counter:\n%s", b.String())
	}
}

func TestServerQueryBatch(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{BatchWorkers: 4})
	defer sv.Close()
	qs := append(s.SampleQuestions(6), "what is the meaning of life")
	items := sv.QueryBatch(context.Background(), qs, WithTopK(2))
	if len(items) != len(qs) {
		t.Fatalf("got %d items, want %d", len(items), len(qs))
	}
	for i, it := range items[:6] {
		if it.Question != qs[i] {
			t.Errorf("slot %d out of order: %q != %q", i, it.Question, qs[i])
		}
		if it.Err != nil || it.Result == nil || it.Result.Answer == nil {
			t.Errorf("slot %d = %+v", i, it)
			continue
		}
		if len(it.Result.Interpretations) == 0 || len(it.Result.Interpretations) > 2 {
			t.Errorf("slot %d interpretations = %d, want 1..2", i, len(it.Result.Interpretations))
		}
	}
	last := items[len(items)-1]
	if last.Err == nil || !IsUnanswerable(last.Err) {
		t.Errorf("unanswerable slot = %+v, want typed error", last)
	}
}

// TestServerQueryWithTimeout: WithTimeout is armed on the request context
// before the serving pipeline, so it bounds queueing (cache, flight,
// admission) as well as the engine call.
func TestServerQueryWithTimeout(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{CacheEntries: -1})
	defer sv.Close()
	q := s.SampleQuestions(1)[0]
	if _, err := sv.Query(context.Background(), q, WithTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if _, err := sv.Query(context.Background(), q, WithTimeout(time.Minute)); err != nil {
		t.Fatalf("generous timeout failed: %v", err)
	}
}

// TestServerImplementsAnswerer: a Server chains like any other Answerer.
func TestServerImplementsAnswerer(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	var _ Answerer = sv
	var _ Answerer = s
	syn, err := s.Baseline("synonym")
	if err != nil {
		t.Fatal(err)
	}
	hybrid := Chain(sv, syn)
	q := s.SampleQuestions(1)[0]
	res, err := hybrid.Query(context.Background(), q)
	if err != nil || res.Answer == nil {
		t.Fatalf("chained server lost the answer: %v %+v", err, res)
	}
}
