package kbqa

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// smallSystem builds a private system for tests that retrain it, so the
// shared testSystem fixture is never mutated.
func smallSystem(t *testing.T) *System {
	t.Helper()
	s, err := Build(Options{Flavor: "freebase", Seed: 11, Scale: 8, PairsPerIntent: 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerPersistentCacheSurvivesRestart: answers cached by one Server
// must be served by a new Server over the same cache directory without
// touching the engine again.
func TestServerPersistentCacheSurvivesRestart(t *testing.T) {
	s := testSystem(t)
	dir := t.TempDir()
	qs := s.SampleQuestions(5)
	ctx := context.Background()

	sv1 := mustServer(t, s, ServerOptions{CacheDir: dir})
	want := make([]*Result, len(qs))
	for i, q := range qs {
		res, err := sv1.Query(ctx, q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		want[i] = res
	}
	if err := sv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sv2 := mustServer(t, s, ServerOptions{CacheDir: dir})
	defer sv2.Close()
	for i, q := range qs {
		res, err := sv2.Query(ctx, q)
		if err != nil {
			t.Fatalf("post-restart Query(%q): %v", q, err)
		}
		if res.Answer == nil || want[i].Answer == nil ||
			res.Answer.Value != want[i].Answer.Value ||
			res.Answer.Predicate != want[i].Answer.Predicate {
			t.Errorf("post-restart Query(%q) = %+v, want %+v", q, res.Answer, want[i].Answer)
		}
	}
	m := sv2.Metrics()
	if m.CacheMisses != 0 || m.CachePersistHits != uint64(len(qs)) {
		t.Errorf("misses/persist-hits = %d/%d, want 0/%d (all answers from disk)",
			m.CacheMisses, m.CachePersistHits, len(qs))
	}
}

// TestServerNegativeEntriesPersist: a cached typed failure (negative
// entry) survives the restart too — the rebooted server refuses the same
// question from disk instead of re-probing.
func TestServerNegativeEntriesPersist(t *testing.T) {
	s := testSystem(t)
	dir := t.TempDir()
	ctx := context.Background()
	const q = "what is the meaning of life"

	sv1 := mustServer(t, s, ServerOptions{CacheDir: dir})
	_, err1 := sv1.Query(ctx, q)
	if err1 == nil || !IsUnanswerable(err1) {
		t.Fatalf("err = %v, want a typed unanswerable failure", err1)
	}
	sv1.Close()

	sv2 := mustServer(t, s, ServerOptions{CacheDir: dir})
	defer sv2.Close()
	_, err2 := sv2.Query(ctx, q)
	if err2 == nil || ErrorCode(err2) != ErrorCode(err1) {
		t.Fatalf("post-restart err = %v (code %q), want code %q", err2, ErrorCode(err2), ErrorCode(err1))
	}
	if m := sv2.Metrics(); m.CacheMisses != 0 {
		t.Errorf("negative entry missed the persisted cache: %+v", m)
	}
}

// TestServerCacheDirRejectsDisabledCache: persistence over a disabled
// cache is a configuration contradiction, not a silent no-op.
func TestServerCacheDirRejectsDisabledCache(t *testing.T) {
	s := testSystem(t)
	if _, err := s.Server(ServerOptions{CacheDir: t.TempDir(), CacheEntries: -1}); err == nil {
		t.Fatal("CacheDir with disabled caching accepted")
	}
}

// TestServerLearnBumpsGeneration: Learn and LoadModel must invalidate the
// answer cache the moment they return — the next identical query is a miss
// recomputed on the new engine, even though the old entry is resident.
func TestServerLearnBumpsGeneration(t *testing.T) {
	s := smallSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	ctx := context.Background()
	q := s.SampleQuestions(1)[0]

	if _, err := sv.Query(ctx, q); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, err := sv.Query(ctx, q); err != nil {
		t.Fatalf("Query: %v", err)
	}
	m := sv.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 1 {
		t.Fatalf("misses/hits = %d/%d, want 1/1 before retrain", m.CacheMisses, m.CacheHits)
	}
	if sv.Generation() != 0 {
		t.Fatalf("generation = %d before retrain", sv.Generation())
	}

	s.Learn(s.TrainingCorpus())
	if sv.Generation() != 1 {
		t.Fatalf("generation = %d after Learn, want 1", sv.Generation())
	}
	if _, err := sv.Query(ctx, q); err != nil {
		t.Fatalf("post-Learn Query: %v", err)
	}
	m = sv.Metrics()
	if m.CacheMisses != 2 {
		t.Fatalf("misses = %d after Learn, want 2 (old entry unreachable)", m.CacheMisses)
	}

	// LoadModel invalidates the same way.
	var buf bytes.Buffer
	if err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if sv.Generation() != 2 {
		t.Fatalf("generation = %d after LoadModel, want 2", sv.Generation())
	}
}

// TestServerQueryLearnRace hammers Query from many goroutines while the
// system retrains repeatedly (run with -race): no query may error on
// anything but a typed unanswerable failure, and once a Learn has
// returned, no query started afterwards may be served from a pre-Learn
// cache entry — verified by the generation counter having advanced past
// every served entry's generation (the serve-level invariant is asserted
// directly in internal/serve's TestGenerationInvalidationRace; here the
// full System/Server plumbing is exercised).
func TestServerQueryLearnRace(t *testing.T) {
	s := smallSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	qs := s.SampleQuestions(6)
	if len(qs) == 0 {
		t.Skip("no sample questions")
	}
	corpus := s.TrainingCorpus()

	const retrains = 5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := sv.Query(ctx, qs[(g+i)%len(qs)])
				if err != nil && !IsUnanswerable(err) {
					t.Errorf("Query under retrain: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < retrains; i++ {
		s.Learn(corpus)
	}
	close(stop)
	wg.Wait()

	if g := sv.Generation(); g != retrains {
		t.Fatalf("generation = %d, want %d", g, retrains)
	}
	// The cache must still function after the churn.
	q := qs[0]
	if _, err := sv.Query(context.Background(), q); err != nil && !IsUnanswerable(err) {
		t.Fatalf("post-race Query: %v", err)
	}
}

// TestServerCacheTTL: a TTL of a nanosecond forces recomputation; a
// generous TTL keeps the hit path.
func TestServerCacheTTL(t *testing.T) {
	s := testSystem(t)
	ctx := context.Background()
	q := s.SampleQuestions(1)[0]

	short := mustServer(t, s, ServerOptions{CacheTTL: time.Nanosecond})
	defer short.Close()
	short.Query(ctx, q)
	time.Sleep(time.Millisecond)
	short.Query(ctx, q)
	if m := short.Metrics(); m.CacheMisses != 2 {
		t.Errorf("short TTL misses = %d, want 2", m.CacheMisses)
	}

	long := mustServer(t, s, ServerOptions{CacheTTL: time.Hour})
	defer long.Close()
	long.Query(ctx, q)
	long.Query(ctx, q)
	if m := long.Metrics(); m.CacheHits != 1 {
		t.Errorf("long TTL hits = %d, want 1", m.CacheHits)
	}
}

// TestServerWarmFromCorpus: warming primes the cache so traffic hits it,
// and reports how many questions ended resident.
func TestServerWarmFromCorpus(t *testing.T) {
	s := testSystem(t)
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	qs := s.SampleQuestions(8)

	warmed := sv.WarmFromCorpus(context.Background(), qs)
	if warmed != len(qs) {
		t.Fatalf("warmed = %d, want %d", warmed, len(qs))
	}
	for _, q := range qs {
		if _, err := sv.Query(context.Background(), q); err != nil {
			t.Fatalf("Query(%q) after warm: %v", q, err)
		}
	}
	m := sv.Metrics()
	if m.CacheHits != uint64(len(qs)) {
		t.Errorf("hits = %d, want %d (all traffic served warm)", m.CacheHits, len(qs))
	}
}

// TestServerRateLimit: the per-client token bucket refuses the over-quota
// client with a Retry-After hint, counts the rejection, and leaves other
// clients untouched.
func TestServerRateLimit(t *testing.T) {
	s := testSystem(t)
	// Negligible refill: deterministic regardless of scheduler pauses.
	sv := mustServer(t, s, ServerOptions{RateLimit: 0.001, RateBurst: 2})
	defer sv.Close()

	for i := 0; i < 2; i++ {
		if ok, _ := sv.Allow("client-a"); !ok {
			t.Fatalf("request %d inside burst refused", i)
		}
	}
	ok, retry := sv.Allow("client-a")
	if ok {
		t.Fatal("over-quota request allowed")
	}
	if retry <= 0 {
		t.Fatalf("retryAfter = %v, want > 0", retry)
	}
	if ok, _ := sv.Allow("client-b"); !ok {
		t.Fatal("distinct client throttled")
	}
	if m := sv.Metrics(); m.RateLimitRejected != 1 {
		t.Errorf("ratelimit rejected = %d, want 1", m.RateLimitRejected)
	}

	// Without a configured limit every request is allowed.
	unlimited := mustServer(t, s, ServerOptions{})
	defer unlimited.Close()
	for i := 0; i < 100; i++ {
		if ok, _ := unlimited.Allow("anyone"); !ok {
			t.Fatal("unlimited server refused a request")
		}
	}
}

// TestServerStaleModelCacheRefusedAcrossRestart: a cache written by a
// retrained model must not be served by a fresh boot running the seed
// model — the persisted model tag catches the mismatch and the generation
// advances past the stale entries.
func TestServerStaleModelCacheRefusedAcrossRestart(t *testing.T) {
	opts := Options{Flavor: "freebase", Seed: 13, Scale: 8, PairsPerIntent: 10}
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	sv1 := mustServer(t, s1, ServerOptions{CacheDir: dir})
	q := s1.SampleQuestions(1)[0]
	corpus := s1.TrainingCorpus()
	s1.Learn(corpus[:len(corpus)/2]) // a genuinely different model
	if sv1.Generation() != 1 {
		t.Fatalf("generation = %d after Learn, want 1", sv1.Generation())
	}
	if _, err := sv1.Query(ctx, q); err != nil && !IsUnanswerable(err) {
		t.Fatal(err)
	}
	if err := sv1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process builds the same world, which learns the
	// seed model — not the retrained one the cache holds.
	s2, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	sv2 := mustServer(t, s2, ServerOptions{CacheDir: dir})
	defer sv2.Close()
	if g := sv2.Generation(); g != 2 {
		t.Fatalf("fresh-boot generation = %d, want 2 (advanced past the retrained entries)", g)
	}
	if _, err := sv2.Query(ctx, q); err != nil && !IsUnanswerable(err) {
		t.Fatal(err)
	}
	m := sv2.Metrics()
	if m.CachePersistHits != 0 || m.CacheMisses != 1 {
		t.Errorf("persist-hits/misses = %d/%d, want 0/1 (stale model's answers refused)",
			m.CachePersistHits, m.CacheMisses)
	}

	// The inverse ordering — Learn before Server construction — is caught
	// the same way: the cache sv2 just wrote belongs to s2's seed model,
	// and a system that retrained first presents a different tag.
	s3, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	s3.Learn(corpus[:len(corpus)/2])
	sv2.Close() // flush sv2's seed-model entries first
	sv3 := mustServer(t, s3, ServerOptions{CacheDir: dir})
	defer sv3.Close()
	if m := sv3.Metrics(); m.CacheEntries != 0 {
		t.Errorf("pre-construction Learn: %d seed-model entries replayed into the retrained system", m.CacheEntries)
	}
}

// TestServerCloseDeregistersRetrainHook: a closed server must not be
// retained (or notified) by the system — churning servers on a long-lived
// system leaks nothing.
func TestServerCloseDeregistersRetrainHook(t *testing.T) {
	s := smallSystem(t)
	for i := 0; i < 5; i++ {
		sv := mustServer(t, s, ServerOptions{})
		if err := sv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.RLock()
	n := len(s.retrain)
	s.mu.RUnlock()
	if n != 0 {
		t.Fatalf("%d retrain hooks still registered after all servers closed", n)
	}
	// A live server's hook still fires after dead ones are gone.
	sv := mustServer(t, s, ServerOptions{})
	defer sv.Close()
	s.Learn(s.TrainingCorpus())
	if g := sv.Generation(); g != 1 {
		t.Fatalf("surviving server generation = %d after Learn, want 1", g)
	}
}
