// Command kbqa answers questions over a synthesized knowledge base, either
// one-shot (-q) or as an interactive REPL.
//
// Usage:
//
//	kbqa -flavor freebase -q "What is the population of Dunford?"
//	kbqa -flavor dbpedia            # interactive
//	kbqa -samples 10                # print 10 answerable questions and quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/kbqa"
)

func main() {
	flavor := flag.String("flavor", "freebase", "knowledge base flavor: kba, freebase, dbpedia")
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Int("scale", 30, "entities per category")
	pairs := flag.Int("pairs", 40, "training QA pairs per intent")
	question := flag.String("q", "", "one-shot question (otherwise interactive)")
	samples := flag.Int("samples", 0, "print this many answerable sample questions and exit")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building %s world (seed %d)...\n", *flavor, *seed)
	sys, err := kbqa.Build(kbqa.Options{
		Flavor:         *flavor,
		Seed:           *seed,
		Scale:          *scale,
		PairsPerIntent: *pairs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbqa:", err)
		os.Exit(1)
	}
	st := sys.Stats()
	fmt.Fprintf(os.Stderr, "ready: %d entities, %d triples, %d templates, %d predicates\n",
		st.Entities, st.Triples, st.Templates, st.Intents)

	if *samples > 0 {
		for _, q := range sys.SampleQuestions(*samples) {
			fmt.Println(q)
		}
		return
	}
	if *question != "" {
		answer(sys, *question)
		return
	}

	fmt.Fprintln(os.Stderr, "enter questions, one per line (ctrl-D to quit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		answer(sys, q)
	}
}

func answer(sys *kbqa.System, q string) {
	ans, ok := sys.Ask(q)
	if !ok {
		fmt.Println("no answer (question outside the knowledge base or not a factoid question)")
		return
	}
	fmt.Printf("answer:    %s\n", ans.Value)
	if len(ans.Values) > 1 {
		fmt.Printf("all:       %s\n", strings.Join(ans.Values, ", "))
	}
	fmt.Printf("predicate: %s\n", ans.Predicate)
	fmt.Printf("template:  %s\n", ans.Template)
	for i, st := range ans.Steps {
		fmt.Printf("step %d:    %q -> %s (via %s)\n", i+1, st.Question, st.Value, st.Predicate)
	}
}
