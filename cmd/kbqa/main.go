// Command kbqa answers questions over a synthesized knowledge base, either
// one-shot (-q) or as an interactive REPL. Questions of any supported
// shape route through the unified Query API: binary factoid, complex
// (multi-hop), and ranking/comparison/listing variants.
//
// Usage:
//
//	kbqa -flavor freebase -q "What is the population of Dunford?"
//	kbqa -flavor dbpedia            # interactive
//	kbqa -samples 10                # print 10 answerable questions and quit
//	kbqa -q "..." -topk 5           # show the 5 strongest interpretations
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/kbqa"
)

func main() {
	flavor := flag.String("flavor", "freebase", "knowledge base flavor: kba, freebase, dbpedia")
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Int("scale", 30, "entities per category")
	pairs := flag.Int("pairs", 40, "training QA pairs per intent")
	question := flag.String("q", "", "one-shot question (otherwise interactive)")
	samples := flag.Int("samples", 0, "print this many answerable sample questions and exit")
	topk := flag.Int("topk", 3, "ranked interpretations to display")
	timeout := flag.Duration("timeout", 10*time.Second, "per-question deadline (0 = none)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building %s world (seed %d)...\n", *flavor, *seed)
	sys, err := kbqa.Build(kbqa.Options{
		Flavor:         *flavor,
		Seed:           *seed,
		Scale:          *scale,
		PairsPerIntent: *pairs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbqa:", err)
		os.Exit(1)
	}
	st := sys.Stats()
	fmt.Fprintf(os.Stderr, "ready: %d entities, %d triples, %d templates, %d predicates\n",
		st.Entities, st.Triples, st.Templates, st.Intents)

	if *samples > 0 {
		for _, q := range sys.SampleQuestions(*samples) {
			fmt.Println(q)
		}
		return
	}
	opts := []kbqa.QueryOption{kbqa.WithTopK(*topk)}
	if *timeout > 0 {
		opts = append(opts, kbqa.WithTimeout(*timeout))
	}
	if *question != "" {
		answer(sys, *question, opts)
		return
	}

	fmt.Fprintln(os.Stderr, "enter questions, one per line (ctrl-D to quit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		answer(sys, q, opts)
	}
}

func answer(sys *kbqa.System, q string, opts []kbqa.QueryOption) {
	res, err := sys.Query(context.Background(), q, opts...)
	if err != nil {
		fmt.Printf("no answer [%s]: %v\n", kbqa.ErrorCode(err), err)
		return
	}
	if res.Variant != nil {
		fmt.Printf("%s over %s:\n", res.Variant.Kind, res.Variant.Predicate)
		for i := range res.Variant.Entities {
			val := ""
			if i < len(res.Variant.Values) {
				val = res.Variant.Values[i]
			}
			fmt.Printf("  %2d. %-24s %s\n", i+1, res.Variant.Entities[i], val)
		}
		return
	}
	ans := res.Answer
	fmt.Printf("answer:    %s\n", ans.Value)
	if len(ans.Values) > 1 {
		fmt.Printf("all:       %s\n", strings.Join(ans.Values, ", "))
	}
	fmt.Printf("predicate: %s\n", ans.Predicate)
	fmt.Printf("template:  %s\n", ans.Template)
	for i, st := range ans.Steps {
		fmt.Printf("step %d:    %q -> %s (via %s)\n", i+1, st.Question, st.Value, st.Predicate)
	}
	if len(res.Interpretations) > 1 {
		fmt.Println("interpretations:")
		for i, in := range res.Interpretations {
			fmt.Printf("  %2d. %.4f  %-28s %s (%s)\n", i+1, in.Score, in.Predicate, in.Entity, in.Template)
		}
	}
	fmt.Printf("timing:    parse %v, match %v, probe %v, total %v\n",
		res.Timings.Parse.Round(time.Microsecond), res.Timings.Match.Round(time.Microsecond),
		res.Timings.Probe.Round(time.Microsecond), res.Timings.Total.Round(time.Microsecond))
}
