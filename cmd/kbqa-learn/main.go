// Command kbqa-learn runs the offline procedure (Sec 2's "offline part"):
// it synthesizes the knowledge base and QA corpus, extracts entity–value
// pairs, estimates P(p|t) with EM, and writes the learned model to disk.
//
// Usage:
//
//	kbqa-learn -flavor kba -o model.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/kbqa"
)

func main() {
	flavor := flag.String("flavor", "freebase", "knowledge base flavor: kba, freebase, dbpedia")
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Int("scale", 30, "entities per category")
	pairs := flag.Int("pairs", 40, "training QA pairs per intent")
	noise := flag.Float64("noise", 0.15, "corpus noise rate")
	out := flag.String("o", "kbqa-model.gob", "output model path")
	kbOut := flag.String("kb-image", "", "also write the knowledge base as a snapshot image to this path (for kbqa-shard/-server -kb-image boot)")
	flag.Parse()

	sys, err := kbqa.Build(kbqa.Options{
		Flavor:         *flavor,
		Seed:           *seed,
		Scale:          *scale,
		PairsPerIntent: *pairs,
		NoiseRate:      noise, // flag pointer: -noise 0 now really means noise-free
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbqa-learn:", err)
		os.Exit(1)
	}
	st := sys.Stats()
	fmt.Printf("offline procedure complete over %s:\n", st.Flavor)
	fmt.Printf("  corpus:     %d QA pairs\n", st.CorpusSize)
	fmt.Printf("  templates:  %d\n", st.Templates)
	fmt.Printf("  predicates: %d (direct + expanded)\n", st.Intents)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbqa-learn:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := sys.SaveModel(f); err != nil {
		fmt.Fprintln(os.Stderr, "kbqa-learn:", err)
		os.Exit(1)
	}
	fmt.Printf("model written to %s\n", *out)

	if *kbOut != "" {
		if err := sys.SaveKBImage(*kbOut); err != nil {
			fmt.Fprintln(os.Stderr, "kbqa-learn:", err)
			os.Exit(1)
		}
		fmt.Printf("kb image written to %s\n", *kbOut)
	}
}
