// Command kbqa-shard is the knowledge-base shard server of the
// distributed serving topology: it loads the (deterministically
// generated) world, owns a subset of its subject-hash shards, and answers
// shardrpc index reads — probe frontiers, point lookups, cursor scans —
// for kbqa-server frontends.
//
// Every shard server loads the full world; ownership is the routing
// contract with the placement, not a storage split, so replicas need no
// data movement and a frontend with the same -servers list computes the
// same placement. Start N of these and point kbqa-server's
// -shard-servers at them:
//
//	kbqa-shard -addr :9101 -servers :9101,:9102 -replicas 2
//	kbqa-shard -addr :9102 -servers :9101,:9102 -replicas 2
//	kbqa-server -shard-servers :9101,:9102 -shard-replicas 2
//
// Generating the world from scratch dominates boot time. -kb-save writes
// the loaded world as a snapshot image after generation; -kb-image boots
// from such an image instead of generating, memory-mapping the file so the
// world is served pages-on-demand (and shared between replicas on one
// host). With -kb-image the generation flags (-flavor, -seed, -scale,
// -shards) are ignored — the image is the world, and the fingerprint
// handshake still guarantees it matches what the frontends built.
package main

import (
	"context"
	"flag"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/kbgen"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/rdf/snapshot"
	"repro/internal/shardrpc"
	"repro/kbqa"
)

func main() {
	addr := flag.String("addr", ":9101", "listen address")
	flavor := flag.String("flavor", "freebase", "knowledge base flavor (must match the frontend)")
	seed := flag.Int64("seed", 42, "generation seed (must match the frontend)")
	scale := flag.Int("scale", 30, "base entities per category (must match the frontend)")
	shards := flag.Int("shards", 4, "subject-hash shard count of the world (must match the frontend)")
	servers := flag.String("servers", "", "comma-separated list of every shard server; with -replicas this derives the shards this server owns (empty = own all shards)")
	self := flag.String("self", "", "this server's entry in -servers (default: -addr)")
	replicas := flag.Int("replicas", 2, "replication factor of the placement (used with -servers)")
	kbImage := flag.String("kb-image", "", "boot from this snapshot image instead of generating the world (generation flags are ignored)")
	kbSave := flag.String("kb-save", "", "after generating, write the world as a snapshot image to this path")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn, or error")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	fatal := func(msg string, fields ...obs.Field) {
		logger.Error(msg, fields...)
		os.Exit(1)
	}

	var store rdf.Sharded
	if *kbImage != "" {
		if *kbSave != "" {
			fatal("-kb-save needs a generated world; it cannot be combined with -kb-image")
		}
		logger.Info("mapping world image", obs.F("path", *kbImage))
		im, err := snapshot.OpenImage(*kbImage, snapshot.OpenOptions{})
		if err != nil {
			fatal("open kb image", obs.F("path", *kbImage), obs.F("error", err.Error()))
		}
		defer im.Close()
		store = im
	} else {
		f, err := kbqa.ParseFlavor(*flavor)
		if err != nil {
			fatal("parse flavor", obs.F("error", err.Error()))
		}
		if *shards < 2 {
			fatal("need -shards >= 2: a shard server serves a sharded world")
		}
		logger.Info("loading world", obs.F("flavor", *flavor), obs.F("seed", *seed),
			obs.F("scale", *scale), obs.F("shards", *shards))
		kb := kbgen.Generate(kbgen.Config{Seed: *seed, Flavor: f, Scale: *scale, Shards: *shards})
		ss, ok := kb.Store.(rdf.Sharded)
		if !ok {
			fatal("world store is not sharded")
		}
		store = ss
		if *kbSave != "" {
			if err := snapshot.WriteImageFile(*kbSave, ss); err != nil {
				fatal("save kb image", obs.F("path", *kbSave), obs.F("error", err.Error()))
			}
			logger.Info("world image saved", obs.F("path", *kbSave),
				obs.F("fingerprint", shardrpc.Fingerprint(ss, ss.NumShards())))
		}
	}

	var owns []int
	if *servers != "" {
		list := strings.Split(*servers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		me := *self
		if me == "" {
			me = *addr
		}
		pl, err := shardrpc.NewPlacement(list, store.NumShards(), *replicas)
		if err != nil {
			fatal("build placement", obs.F("error", err.Error()))
		}
		owns = pl.Owned(me)
		if len(owns) == 0 {
			fatal("this server owns no shards under the placement",
				obs.F("self", me), obs.F("servers", *servers))
		}
	}

	srv := shardrpc.NewServer(store, shardrpc.ServerOptions{Owns: owns, Logger: logger})
	st := srv.Stats()
	logger.Info("world ready", obs.F("triples", st.Triples),
		obs.F("shards", st.NumShards), obs.F("owned", len(st.Owned)),
		obs.F("fingerprint", shardrpc.Fingerprint(store, store.NumShards())))

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", obs.F("addr", *addr), obs.F("error", err.Error()))
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, lis); err != nil {
		fatal("serve", obs.F("error", err.Error()))
	}
	st = srv.Stats()
	logger.Info("shard server stopped", obs.F("requests", st.Requests), obs.F("failures", st.Failures))
}
