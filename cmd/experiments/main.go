// Command experiments regenerates every table of the paper's evaluation
// section (Sec 7) over the synthetic worlds and prints them with the
// paper's reference values inline.
//
// Usage:
//
//	experiments                 # all tables
//	experiments -table 13       # one table
//	experiments -md out.md      # also write a Markdown report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
)

func main() {
	table := flag.String("table", "all", "table to run: 4..18, ev, or all")
	md := flag.String("md", "", "also write the full report to this Markdown file")
	flag.Parse()

	suite := eval.NewSuite()
	runners := map[string]func() string{
		"4": suite.Table4Text, "5": suite.Table5Text, "6": suite.Table6Text,
		"7": suite.Table7Text, "8": suite.Table8Text, "9": suite.Table9Text,
		"10": suite.Table10Text, "11": suite.Table11Text, "12": suite.Table12Text,
		"13": suite.Table13Text, "14": suite.Table14Text, "15": suite.Table15Text,
		"16": suite.Table16Text, "17": suite.Table17Text, "18": suite.Table18Text,
		"ev": suite.EntityValueIDText, "abl": suite.AblationText,
	}

	var out string
	if *table == "all" {
		out = suite.All()
	} else if run, ok := runners[*table]; ok {
		out = run()
	} else {
		fmt.Fprintf(os.Stderr, "experiments: unknown table %q\n", *table)
		os.Exit(2)
	}
	fmt.Print(out)

	if *md != "" {
		full := out
		if *table != "all" {
			full = suite.All()
		}
		report := "# KBQA reproduction — experiment report\n\n```\n" +
			strings.TrimRight(full, "\n") + "\n```\n"
		if err := os.WriteFile(*md, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *md)
	}
}
