package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/kbqa"
)

// lockedBuffer collects the server's JSON log lines from handler
// goroutines so the test can read them afterwards.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// tracedServer builds a dedicated server whose tracer captures nothing by
// sampling (rate 0) and everything by the slow path (threshold 1ns), over
// a sharded store so probes emit per-shard spans.
func tracedServer(t *testing.T, logBuf *lockedBuffer) (*server, *httptest.Server) {
	t.Helper()
	sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 21, Scale: 12, PairsPerIntent: 12, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var logger *kbqa.Logger
	if logBuf != nil {
		logger = kbqa.NewLogger(logBuf, kbqa.LogDebug)
	}
	s, err := newServer(sys, kbqa.ServerOptions{
		SlowQueryThreshold: time.Nanosecond, // every request is "slow": capture must not depend on sampling luck
		TraceBuffer:        64,
		Logger:             logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.srv.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp, body
}

// TestTraceAPIEndToEnd is the ISSUE's integration test: a deliberately
// slow chain question is always captured (sampling off, slow threshold
// 1ns), the X-Kbqa-Trace header resolves to a /debug/traces entry, and
// that trace nests the parse/match/probe stage spans with durations
// exactly equal to the response's Timings, plus per-hop and per-shard
// probe spans from the layers below.
func TestTraceAPIEndToEnd(t *testing.T) {
	var logBuf lockedBuffer
	s, ts := tracedServer(t, &logBuf)

	// Find an answerable composed two-hop chain question.
	var resp askResponse
	var header string
	answered := false
	for _, cq := range s.sys.ComplexQuestions(21, 8) {
		r, _ := getJSON(t, ts.URL+"/ask?q="+escapeQuery(cq.Q), &resp)
		header = r.Header.Get("X-Kbqa-Trace")
		if header == "" {
			t.Fatalf("traced request carries no X-Kbqa-Trace header (question %q)", cq.Q)
		}
		if r.StatusCode == http.StatusOK && resp.Answered {
			answered = true
			break
		}
	}
	if !answered {
		t.Fatal("no composed chain question was answerable; cannot exercise the chain path")
	}
	if resp.TraceID == "" || resp.TraceID != header {
		t.Fatalf("body trace_id %q != X-Kbqa-Trace header %q", resp.TraceID, header)
	}
	if len(resp.Steps) < 2 {
		t.Fatalf("chain answer has %d steps, want >= 2: %+v", len(resp.Steps), resp.Steps)
	}
	if resp.Timings == nil || resp.Timings.Total <= 0 {
		t.Fatalf("answered response carries no timings: %+v", resp.Timings)
	}

	// The trace must be in /debug/traces; the handler finishes the trace
	// before the response is written, so no polling is necessary, but
	// retry briefly anyway to stay robust against scheduling.
	var trace *kbqa.TraceSnapshot
	for attempt := 0; attempt < 50 && trace == nil; attempt++ {
		var tr tracesResponse
		getJSON(t, ts.URL+"/debug/traces", &tr)
		if tr.Count != len(tr.Traces) {
			t.Fatalf("count %d != len(traces) %d", tr.Count, len(tr.Traces))
		}
		for i := range tr.Traces {
			if tr.Traces[i].ID == resp.TraceID {
				trace = &tr.Traces[i]
				break
			}
		}
		if trace == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if trace == nil {
		t.Fatalf("trace %s never appeared in /debug/traces", resp.TraceID)
	}
	if !trace.Slow {
		t.Error("1ns-threshold trace not marked slow")
	}

	root := &trace.Root
	if root.Name != "http.ask" {
		t.Errorf("root span = %q, want http.ask", root.Name)
	}
	for attr, want := range map[string]string{"method": "GET", "path": "/ask", "status": "200"} {
		if v, _ := root.Attr(attr); v != want {
			t.Errorf("root %s attr = %q, want %q", attr, v, want)
		}
	}
	if v, _ := root.Attr("question"); v != resp.Question {
		t.Errorf("root question attr = %q, want %q", v, resp.Question)
	}
	if v, ok := root.Attr("client"); !ok || v == "" {
		t.Error("root span has no client attr")
	}

	// The serving pipeline and engine must hang off the HTTP root.
	for _, name := range []string{"serve.cache", "serve.flight", "serve.engine", "engine.answer", "engine.hop", "probe.shard"} {
		if root.Find(name) == nil {
			t.Errorf("trace has no %s span", name)
		}
	}

	// Stage spans mirror the response Timings exactly: both read the same
	// accumulator, so the integers must be equal, not merely close.
	eng := root.Find("engine.answer")
	if eng == nil {
		t.Fatal("no engine.answer span")
	}
	wantStages := map[string]time.Duration{
		"parse": resp.Timings.Parse,
		"match": resp.Timings.Match,
		"probe": resp.Timings.Probe,
	}
	for stage, want := range wantStages {
		ssp := eng.Find(stage)
		if ssp == nil {
			t.Errorf("engine.answer has no %s stage span", stage)
			continue
		}
		if ssp.DurationNanos != want.Nanoseconds() {
			t.Errorf("%s stage span %dns != response timing %dns", stage, ssp.DurationNanos, want.Nanoseconds())
		}
	}
	if total := trace.DurationNanos; total < resp.Timings.Total.Nanoseconds() {
		t.Errorf("trace duration %dns < engine total %dns", total, resp.Timings.Total.Nanoseconds())
	}

	// Every log line is valid JSON; the request was access-logged with the
	// trace ID, and the slow-query path warned.
	var sawAccess, sawSlow bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		switch rec["msg"] {
		case "request":
			if rec["trace_id"] == resp.TraceID && rec["path"] == "/ask" && rec["status"] == float64(200) {
				sawAccess = true
			}
		case "slow query":
			sawSlow = true
		}
	}
	if !sawAccess {
		t.Errorf("no access-log line for trace %s:\n%s", resp.TraceID, logBuf.String())
	}
	if !sawSlow {
		t.Error("no slow-query log line despite 1ns threshold")
	}
}

// TestTraceUntracedServer pins the off state at the HTTP layer: no
// header, no trace_id, /debug/traces serves an empty (not null) list.
func TestTraceUntracedServer(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	q := s.sys.SampleQuestions(1)[0]
	var resp askResponse
	r, _ := getJSON(t, ts.URL+"/ask?q="+escapeQuery(q), &resp)
	if h := r.Header.Get("X-Kbqa-Trace"); h != "" {
		t.Errorf("untraced server sent X-Kbqa-Trace %q", h)
	}
	if resp.TraceID != "" {
		t.Errorf("untraced response carries trace_id %q", resp.TraceID)
	}
	r, body := getJSON(t, ts.URL+"/debug/traces", nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", r.StatusCode)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count != 0 {
		t.Errorf("untraced server retained %d traces", tr.Count)
	}
	if !strings.Contains(string(body), `"traces":[]`) {
		t.Errorf("traces should be an empty array, not null: %s", body)
	}
}

// TestBatchTraceHeader checks /batch runs under one trace whose ID every
// result echoes.
func TestBatchTraceHeader(t *testing.T) {
	s, ts := tracedServer(t, nil)
	qs := s.sys.SampleQuestions(3)
	body, _ := json.Marshal(batchRequest{Questions: qs})
	r, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	header := r.Header.Get("X-Kbqa-Trace")
	if header == "" {
		t.Fatal("batch response has no X-Kbqa-Trace header")
	}
	var resp batchResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Results {
		if item.Answered && item.TraceID != header {
			t.Errorf("result %d trace_id %q != batch trace %q", i, item.TraceID, header)
		}
	}
	var tr tracesResponse
	getJSON(t, ts.URL+"/debug/traces", &tr)
	for i := range tr.Traces {
		if tr.Traces[i].ID == header {
			if got := tr.Traces[i].Root.Name; got != "http.batch" {
				t.Errorf("batch trace root = %q, want http.batch", got)
			}
			return
		}
	}
	t.Fatalf("batch trace %s not retained", header)
}

// TestHealthEndpoints covers /healthz (always ok) and /readyz (503 until
// the boot sequence completes, 200 after).
func TestHealthEndpoints(t *testing.T) {
	s, ts := tracedServer(t, nil)

	var h healthResponse
	r, _ := getJSON(t, ts.URL+"/healthz", &h)
	if r.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("/healthz = %d %+v, want 200 ok", r.StatusCode, h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %f", h.UptimeSeconds)
	}

	// Boot not finished: not ready.
	r, _ = getJSON(t, ts.URL+"/readyz", &h)
	if r.StatusCode != http.StatusServiceUnavailable || h.Status != "starting" {
		t.Errorf("/readyz before boot = %d %q, want 503 starting", r.StatusCode, h.Status)
	}
	s.ready.Store(true)
	r, _ = getJSON(t, ts.URL+"/readyz", &h)
	if r.StatusCode != http.StatusOK || h.Status != "ready" {
		t.Errorf("/readyz after boot = %d %q, want 200 ready", r.StatusCode, h.Status)
	}
	s.ready.Store(false)
	if r, _ = getJSON(t, ts.URL+"/readyz", &h); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz after shutdown flip = %d, want 503", r.StatusCode)
	}
}

// TestPprofRoutes checks the profiler is mounted on the real mux.
func TestPprofRoutes(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestAskTimingsSurfaced: the /ask body carries the per-stage timings of
// the computation even without tracing.
func TestAskTimingsSurfaced(t *testing.T) {
	s := testServer(t)
	q := s.sys.SampleQuestions(2)[1]
	req := httptest.NewRequest(http.MethodGet, "/ask?q="+escapeQuery(q), nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Timings == nil {
		t.Fatal("answered response carries no timings")
	}
	if resp.Timings.Total <= 0 {
		t.Errorf("total timing %v, want > 0", resp.Timings.Total)
	}
}

// TestTraceByIDLookup covers the single-trace endpoint: /debug/traces?id=
// returns exactly the identified trace as a bare TraceSnapshot, and a
// 404 JSON error body when the ring does not hold the ID.
func TestTraceByIDLookup(t *testing.T) {
	s, ts := tracedServer(t, nil)
	_ = s

	var ask askResponse
	r, _ := getJSON(t, ts.URL+"/ask?q="+escapeQuery("who directed Inception"), &ask)
	id := r.Header.Get("X-Kbqa-Trace")
	if id == "" {
		t.Fatal("traced request carries no X-Kbqa-Trace header")
	}

	var snap kbqa.TraceSnapshot
	resp, body := getJSON(t, ts.URL+"/debug/traces?id="+id, &snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces?id=%s: status %d, body %s", id, resp.StatusCode, body)
	}
	if snap.ID != id {
		t.Fatalf("lookup returned trace %q, want %q", snap.ID, id)
	}
	if snap.Root.Name == "" {
		t.Fatalf("single-trace lookup returned an empty root span: %s", body)
	}

	var missErr traceErrorResponse
	resp, body = getJSON(t, ts.URL+"/debug/traces?id=no-such-trace", &missErr)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus id: status %d, want 404 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(missErr.Error, "no-such-trace") {
		t.Fatalf("404 body does not name the missing id: %s", body)
	}
}
