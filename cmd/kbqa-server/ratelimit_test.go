package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/kbqa"
)

// TestRateLimited429 drives the real mux with a per-client quota: the
// over-quota client gets 429 with a Retry-After header, the rejection
// lands in kbqa_ratelimit_rejected_total, and a differently-keyed client
// sails through. The refill rate is negligible so the outcome is
// deterministic however slowly the test runs.
func TestRateLimited429(t *testing.T) {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 5, Scale: 8, PairsPerIntent: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(sys, kbqa.ServerOptions{RateLimit: 0.001, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	q := sys.SampleQuestions(1)[0]

	get := func(apiKey string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/ask?q="+escapeQuery(q), nil)
		if err != nil {
			t.Fatal(err)
		}
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := get("client-a"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d", i, resp.StatusCode)
		}
	}
	resp := get("client-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if resp := get("client-b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("distinct client throttled: status %d", resp.StatusCode)
	}

	// The rejection is visible on both metrics surfaces.
	var m kbqa.ServerMetrics
	jr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if err := json.NewDecoder(jr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.RateLimitRejected != 1 {
		t.Fatalf("ratelimit_rejected = %d, want 1", m.RateLimitRejected)
	}
	pr, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	text, err := io.ReadAll(pr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "kbqa_ratelimit_rejected_total 1\n") {
		t.Errorf("prometheus exposition missing rejection counter:\n%s", text)
	}
}

// TestBatchChargedPerQuestion: a /batch of n questions spends n quota
// units, so batching is not a 256× amplifier over /ask.
func TestBatchChargedPerQuestion(t *testing.T) {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 5, Scale: 8, PairsPerIntent: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(sys, kbqa.ServerOptions{RateLimit: 0.001, RateBurst: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	qs := sys.SampleQuestions(3)

	post := func() *http.Response {
		t.Helper()
		body, _ := json.Marshal(batchRequest{Questions: qs})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/batch", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", "batcher")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp
	}
	// First batch (3 questions, balance 4 → 1) and second (balance 1 → -2)
	// are admitted on positive balance; the third finds the debt.
	for i := 0; i < 2; i++ {
		if resp := post(); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third batch status = %d, want 429 (6 questions spent against burst 4)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestClientKeyFallsBackToRemoteHost: without an API key the limiter keys
// on the remote host, so the port churn of separate connections doesn't
// grant fresh quota.
func TestClientKeyFallsBackToRemoteHost(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/ask?q=x", nil)
	r.RemoteAddr = "192.0.2.7:1234"
	if got := clientKey(r); got != "192.0.2.7" {
		t.Errorf("clientKey = %q, want the bare host", got)
	}
	r.Header.Set("X-API-Key", "team-42")
	if got := clientKey(r); got != "team-42" {
		t.Errorf("clientKey = %q, want the API key", got)
	}
}
