package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getAsk(t *testing.T, s *server, path string) (*httptest.ResponseRecorder, askResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleAsk(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON from %s: %v", path, err)
	}
	return rec, resp
}

func TestHandleAskErrorCode(t *testing.T) {
	s := testServer(t)
	rec, resp := getAsk(t, s, "/ask?q=why+is+the+sky+blue+at+noon")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if resp.ErrorCode != "no_entity" || resp.Error == "" {
		t.Errorf("response = %+v, want error_code no_entity", resp)
	}
}

func TestHandleAskInterpretations(t *testing.T) {
	s := testServer(t)
	q := s.sys.SampleQuestions(1)[0]
	rec, resp := getAsk(t, s, "/ask?q="+escapeQuery(q)+"&topk=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Answered || len(resp.Interpretations) == 0 || len(resp.Interpretations) > 4 {
		t.Fatalf("response = %+v, want 1..4 interpretations", resp)
	}
	if resp.Interpretations[0].Score <= 0 || resp.Interpretations[0].Predicate == "" {
		t.Errorf("degenerate interpretation: %+v", resp.Interpretations[0])
	}
	if rec, _ := getAsk(t, s, "/ask?q="+escapeQuery(q)+"&topk=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus topk status = %d, want 400", rec.Code)
	}
}

func TestHandleAskVariant(t *testing.T) {
	s := testServer(t)
	rec, resp := getAsk(t, s, "/ask?q=Which+city+has+the+largest+population%3F")
	if rec.Code != http.StatusOK {
		t.Skipf("variant not answerable in this world: %s", rec.Body.String())
	}
	if resp.Variant == nil || resp.Variant.Kind != "ranking" {
		t.Errorf("variant response = %+v", resp)
	}
}

func TestHandleMetricsPrometheus(t *testing.T) {
	s := testServer(t)
	// Drive one unanswerable request so the labelled counter is non-empty.
	getAsk(t, s, "/ask?q=zzz+unanswerable+zzz")

	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE kbqa_requests_total counter",
		"kbqa_query_errors_total{code=",
		"kbqa_stage_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}

	// Accept: text/plain negotiates the exposition too; default stays JSON.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	s.handleMetrics(rec, req)
	if !strings.Contains(rec.Body.String(), "kbqa_requests_total") {
		t.Error("Accept: text/plain did not negotiate Prometheus exposition")
	}
	rec = httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Errorf("default /metrics is not JSON: %v", err)
	}
}

func TestHandleBatchTopKAndErrorCodes(t *testing.T) {
	s := testServer(t)
	qs := s.sys.SampleQuestions(2)
	body, _ := json.Marshal(batchRequest{Questions: append(qs, "zzz unanswerable zzz"), TopK: 2})
	rec := postBatch(t, s, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results[:2] {
		if !r.Answered || len(r.Interpretations) == 0 || len(r.Interpretations) > 2 {
			t.Errorf("answerable slot = %+v, want 1..2 interpretations", r)
		}
	}
	last := resp.Results[len(resp.Results)-1]
	if last.Answered || last.ErrorCode == "" {
		t.Errorf("unanswerable slot = %+v, want error_code", last)
	}
}
