// Command kbqa-server exposes a trained KBQA system over HTTP.
//
// Endpoints:
//
//	GET /ask?q=<question>  -> JSON answer (404-style JSON when unanswerable)
//	GET /stats             -> system statistics
//	GET /health            -> liveness probe
//
// Usage:
//
//	kbqa-server -addr :8080 -flavor freebase
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/kbqa"
)

type server struct {
	sys *kbqa.System
}

type askResponse struct {
	Question  string      `json:"question"`
	Answered  bool        `json:"answered"`
	Answer    string      `json:"answer,omitempty"`
	Values    []string    `json:"values,omitempty"`
	Predicate string      `json:"predicate,omitempty"`
	Template  string      `json:"template,omitempty"`
	Steps     []kbqa.Step `json:"steps,omitempty"`
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
		return
	}
	resp := askResponse{Question: q}
	if ans, ok := s.sys.Ask(q); ok {
		resp.Answered = true
		resp.Answer = ans.Value
		resp.Values = ans.Values
		resp.Predicate = ans.Predicate
		resp.Template = ans.Template
		resp.Steps = ans.Steps
	}
	writeJSON(w, resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.sys.Stats())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("kbqa-server: encode response: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flavor := flag.String("flavor", "freebase", "knowledge base flavor")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	log.Printf("building %s world...", *flavor)
	sys, err := kbqa.Build(kbqa.Options{Flavor: *flavor, Seed: *seed})
	if err != nil {
		log.Fatalf("kbqa-server: %v", err)
	}
	st := sys.Stats()
	log.Printf("ready: %d templates over %d predicates", st.Templates, st.Intents)

	s := &server{sys: sys}
	mux := http.NewServeMux()
	mux.HandleFunc("/ask", s.handleAsk)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
