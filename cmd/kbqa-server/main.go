// Command kbqa-server exposes a trained KBQA system over HTTP through the
// production serving runtime (generation-keyed answer cache — optionally
// disk-backed so answers survive restarts — singleflight deduplication,
// per-client rate limiting, admission control, batch executor, metrics
// pipeline) on top of the unified Query API.
//
// Endpoints:
//
//	GET  /ask?q=<question>[&topk=N]  -> JSON answer with ranked
//	     interpretations; failures carry a stable error_code
//	     (no_entity, no_template, no_answer, timeout, ...)
//	POST /batch                      -> {"questions": [...], "topk": N}
//	     -> ordered answers
//	GET  /metrics                    -> JSON counters and latency
//	     histograms; ?format=prometheus (or Accept: text/plain) returns
//	     the Prometheus text exposition
//	GET  /stats                      -> system statistics
//	GET  /health                     -> liveness probe
//
// With -cache-dir the answer cache persists across restarts (append-only
// checksummed segment log: rotation + background merge keep compaction
// off the request path, and the directory is flock-guarded against a
// second server process); -cache-sync bounds durability — an answer is
// durable within that period of being computed; -cache-ttl expires
// entries (expired entries are also dropped from disk by merges);
// -warm N primes the cache with N training-corpus questions at boot;
// -rate-limit R (with -rate-burst B) enforces a per-client token-bucket
// quota, answering 429 with a Retry-After header once a client (identified
// by X-API-Key, else remote address) exhausts its bucket.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and flushing the persistent cache before exiting; per-request
// deadlines reach the engine's probe loops, so expired requests stop
// working instead of leaking scans.
//
// Usage:
//
//	kbqa-server -addr :8080 -flavor freebase -timeout 2s -cache 4096 \
//	    -cache-dir /var/lib/kbqa/cache -cache-ttl 1h -warm 256 \
//	    -rate-limit 50 -rate-burst 100
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/kbqa"
)

// maxBatchSize caps one /batch request; bigger workloads should page.
const maxBatchSize = 256

// maxBatchBodyBytes bounds the /batch request body before JSON decoding,
// so an oversized payload is rejected instead of buffered into memory.
const maxBatchBodyBytes = 1 << 20

// maxTopK caps client-requested interpretation counts.
const maxTopK = 32

type server struct {
	sys *kbqa.System
	srv *kbqa.Server
}

func newServer(sys *kbqa.System, o kbqa.ServerOptions) (*server, error) {
	srv, err := sys.Server(o)
	if err != nil {
		return nil, err
	}
	return &server{sys: sys, srv: srv}, nil
}

type askResponse struct {
	Question        string                `json:"question"`
	Answered        bool                  `json:"answered"`
	Answer          string                `json:"answer,omitempty"`
	Values          []string              `json:"values,omitempty"`
	Predicate       string                `json:"predicate,omitempty"`
	Template        string                `json:"template,omitempty"`
	Steps           []kbqa.Step           `json:"steps,omitempty"`
	Variant         *kbqa.VariantAnswer   `json:"variant,omitempty"`
	Interpretations []kbqa.Interpretation `json:"interpretations,omitempty"`
	Error           string                `json:"error,omitempty"`
	ErrorCode       string                `json:"error_code,omitempty"`
}

// toAskResponse renders one Query outcome: a Result when err is nil, the
// typed failure otherwise.
func toAskResponse(q string, res *kbqa.Result, err error) askResponse {
	if err != nil {
		return askResponse{Question: q, Error: err.Error(), ErrorCode: kbqa.ErrorCode(err)}
	}
	resp := askResponse{Question: q, Answered: true, Interpretations: res.Interpretations}
	if res.Answer != nil {
		resp.Answer = res.Answer.Value
		resp.Values = res.Answer.Values
		resp.Predicate = res.Answer.Predicate
		resp.Template = res.Answer.Template
		resp.Steps = res.Answer.Steps
	}
	if res.Variant != nil {
		resp.Variant = res.Variant
		resp.Answer = strings.Join(res.Variant.Entities, ", ")
	}
	return resp
}

// parseTopK reads a client topk value, clamped to [0, maxTopK]; empty
// keeps the library default.
func parseTopK(raw string) ([]kbqa.QueryOption, error) {
	if raw == "" {
		return nil, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 0 {
		return nil, fmt.Errorf("bad topk %q", raw)
	}
	if k > maxTopK {
		k = maxTopK
	}
	return []kbqa.QueryOption{kbqa.WithTopK(k)}, nil
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSONStatus(w, http.StatusBadRequest, askResponse{Error: `missing query parameter "q"`})
		return
	}
	opts, err := parseTopK(r.URL.Query().Get("topk"))
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, askResponse{Question: q, Error: err.Error()})
		return
	}
	res, err := s.srv.Query(r.Context(), q, opts...)
	if err != nil {
		writeJSONStatus(w, errStatus(err), toAskResponse(q, nil, err))
		return
	}
	writeJSON(w, toAskResponse(q, res, nil))
}

type batchRequest struct {
	Questions []string `json:"questions"`
	// TopK bounds the per-question interpretation count (0 keeps the
	// library default).
	TopK int `json:"topk,omitempty"`
}

type batchResponse struct {
	Results []askResponse `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, askResponse{Error: "POST only"})
		return
	}
	var req batchRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeJSONStatus(w, http.StatusRequestEntityTooLarge,
				askResponse{Error: fmt.Sprintf("request body exceeds %d bytes", maxBatchBodyBytes)})
			return
		}
		writeJSONStatus(w, http.StatusBadRequest, askResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Questions) == 0 {
		writeJSONStatus(w, http.StatusBadRequest, askResponse{Error: `empty "questions"`})
		return
	}
	if len(req.Questions) > maxBatchSize {
		writeJSONStatus(w, http.StatusBadRequest,
			askResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Questions), maxBatchSize)})
		return
	}
	// One quota unit per question: a 256-question batch spends the same
	// budget as 256 /ask calls.
	if s.overQuota(w, r, len(req.Questions)) {
		return
	}
	var opts []kbqa.QueryOption
	if req.TopK > 0 {
		k := req.TopK
		if k > maxTopK {
			k = maxTopK
		}
		opts = append(opts, kbqa.WithTopK(k))
	}
	items := s.srv.QueryBatch(r.Context(), req.Questions, opts...)
	resp := batchResponse{Results: make([]askResponse, len(items))}
	var firstInfraErr error
	infraErrored := 0
	for i, it := range items {
		resp.Results[i] = toAskResponse(it.Question, it.Result, it.Err)
		if it.Err != nil && !kbqa.IsUnanswerable(it.Err) {
			infraErrored++
			if firstInfraErr == nil {
				firstInfraErr = it.Err
			}
		}
	}
	// A batch where every item died on a serving-layer error (shutdown,
	// saturation) should look unhealthy to status-code-based clients, the
	// same way /ask does; partial failures and unanswerable questions stay
	// 200 with per-item error codes.
	if infraErrored == len(items) {
		writeJSONStatus(w, errStatus(firstInfraErr), resp)
		return
	}
	writeJSON(w, resp)
}

// handleMetrics serves the JSON snapshot by default and the Prometheus
// text exposition when asked via ?format=prometheus or an Accept header
// preferring text/plain.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	if format == "prometheus" || (format == "" && strings.Contains(accept, "text/plain")) {
		w.Header().Set("Content-Type", kbqa.PrometheusContentType)
		if err := s.srv.WriteMetricsPrometheus(w); err != nil {
			log.Printf("kbqa-server: write prometheus metrics: %v", err)
		}
		return
	}
	writeJSON(w, s.srv.Metrics())
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.sys.Stats())
}

// clientKey identifies the caller for rate limiting: the X-API-Key header
// when present (keyed quotas shared across a client's machines), else the
// remote host. The header is trusted as-is — there is no key registry —
// so against adversarial clients (who could mint a fresh key per request
// for a fresh bucket) the limiter is a fairness mechanism, not a security
// boundary; put an authenticating proxy in front for that.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// overQuota charges n quota units to the request's client; when the quota
// is exhausted it writes the 429 + Retry-After refusal and reports true.
func (s *server) overQuota(w http.ResponseWriter, r *http.Request, n int) bool {
	ok, retry := s.srv.AllowN(clientKey(r), n)
	if ok {
		return false
	}
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSONStatus(w, http.StatusTooManyRequests,
		askResponse{Error: "rate limit exceeded", ErrorCode: "rate_limited"})
	return true
}

// limited wraps an answering handler with the per-client rate limit:
// over-quota requests are refused with 429 and a Retry-After header before
// they reach the serving pipeline. /batch charges per question inside its
// handler instead (batching must not amplify a client's quota 256×), and
// introspection endpoints (/metrics, /stats, /health) are never limited —
// an over-quota client must still be observable.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.overQuota(w, r, 1) {
			return
		}
		h(w, r)
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ask", s.limited(s.handleAsk))
	mux.HandleFunc("/batch", s.handleBatch) // charges per question, see overQuota
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// errStatus maps Query errors to HTTP statuses: typed unanswerable
// failures to 404, timeouts to 504, engine bugs to 500 (retrying
// re-triggers them), shutdown and other transient failures to 503.
func errStatus(err error) int {
	switch {
	case kbqa.IsUnanswerable(err):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, kbqa.ErrEnginePanic):
		return http.StatusInternalServerError
	default:
		return http.StatusServiceUnavailable
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("kbqa-server: encode response: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flavor := flag.String("flavor", "freebase", "knowledge base flavor")
	seed := flag.Int64("seed", 42, "generation seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request answer deadline (0 = none)")
	cacheEntries := flag.Int("cache", 0, "answer cache capacity (0 = default 4096, negative disables)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent answer cache (empty = memory only)")
	cacheTTL := flag.Duration("cache-ttl", 0, "answer cache entry time-to-live (0 = no expiry)")
	cacheSync := flag.Duration("cache-sync", time.Second, "persistent cache fsync period: answers are durable within this of being computed (0 = default 1s, negative = only at flush/shutdown)")
	warm := flag.Int("warm", 0, "warm the cache with N training-corpus questions at boot (0 = off)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained requests/second (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client burst allowance (0 = ceil of -rate-limit)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent engine calls (0 = 4×GOMAXPROCS)")
	shards := flag.Int("shards", 0, "RDF store subject-hash shards (0 = default, 1 = unsharded)")
	flag.Parse()

	log.Printf("building %s world...", *flavor)
	sys, err := kbqa.Build(kbqa.Options{Flavor: *flavor, Seed: *seed, Shards: *shards})
	if err != nil {
		log.Fatalf("kbqa-server: %v", err)
	}
	st := sys.Stats()
	log.Printf("ready: %d templates over %d predicates", st.Templates, st.Intents)

	s, err := newServer(sys, kbqa.ServerOptions{
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		CacheTTL:       *cacheTTL,
		CacheSyncEvery: *cacheSync,
		MaxConcurrent:  *maxConcurrent,
		Timeout:        *timeout,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
	})
	if err != nil {
		log.Fatalf("kbqa-server: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *cacheDir != "" {
		m := s.srv.Metrics()
		log.Printf("persistent cache %s: %d entries replayed, generation %d",
			*cacheDir, m.CacheEntries, m.Generation)
	}
	if *warm > 0 {
		if *cacheEntries < 0 {
			log.Fatalf("kbqa-server: -warm needs a cache; remove -warm or enable caching (-cache >= 0)")
		}
		qs := sys.SampleQuestions(*warm)
		start := time.Now()
		// Under the signal context, SIGINT during a long warm aborts it
		// instead of being deferred until after.
		n := s.srv.WarmFromCorpus(ctx, qs)
		log.Printf("warmed %d/%d corpus questions in %v", n, len(qs), time.Since(start).Round(time.Millisecond))
		// Make the warm work durable now: a later startup failure
		// (port in use, say) must not discard it.
		if err := s.srv.Flush(); err != nil {
			log.Printf("kbqa-server: flush warmed cache: %v", err)
		}
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      s.mux(),
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Flush the cache (warm work included) before dying on a listen
		// failure — log.Fatalf would skip the graceful path below.
		s.srv.Close()
		log.Fatalf("kbqa-server: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("kbqa-server: shutdown: %v", err)
	}
	// Close drains in-flight queries, then flushes the persistent cache so
	// the next boot replays everything this process answered.
	if err := s.srv.Close(); err != nil {
		log.Printf("kbqa-server: close answer cache: %v", err)
	}
	log.Printf("bye")
}
