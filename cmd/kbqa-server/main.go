// Command kbqa-server exposes a trained KBQA system over HTTP through the
// production serving runtime (generation-keyed answer cache — optionally
// disk-backed so answers survive restarts — singleflight deduplication,
// per-client rate limiting, admission control, batch executor, metrics
// pipeline) on top of the unified Query API.
//
// Endpoints:
//
//	GET  /ask?q=<question>[&topk=N]  -> JSON answer with ranked
//	     interpretations; failures carry a stable error_code
//	     (no_entity, no_template, no_answer, timeout, ...)
//	POST /batch                      -> {"questions": [...], "topk": N}
//	     -> ordered answers
//	GET  /metrics                    -> JSON counters and latency
//	     histograms; ?format=prometheus (or Accept: text/plain) returns
//	     the Prometheus text exposition
//	GET  /stats                      -> system statistics
//	GET  /health                     -> plain-text liveness probe (legacy)
//	GET  /healthz                    -> JSON liveness: status, generation,
//	     uptime
//	GET  /readyz                     -> JSON readiness: 503 until the boot
//	     sequence (replay, warm) completes, 200 after
//	GET  /debug/traces               -> retained request traces, newest
//	     first (see -trace-sample / -slow-query)
//	GET  /debug/pprof/...            -> the Go runtime profiler
//
// Requests to /ask and /batch run under a trace when tracing is on
// (-trace-sample > 0 or -slow-query > 0): the response carries the trace
// ID in the X-Kbqa-Trace header (and trace_id in the JSON body), and
// sampled or slow traces are retained for /debug/traces with nested
// parse/match/probe, per-hop and per-shard spans. Logs are structured
// JSON lines on stderr (-log-level selects the floor); every request is
// access-logged with trace_id, client, generation, status and duration.
//
// With -cache-dir the answer cache persists across restarts (append-only
// checksummed segment log: rotation + background merge keep compaction
// off the request path, and the directory is flock-guarded against a
// second server process); -cache-sync bounds durability — an answer is
// durable within that period of being computed; -cache-ttl expires
// entries (expired entries are also dropped from disk by merges);
// -warm N primes the cache with N training-corpus questions at boot;
// -rate-limit R (with -rate-burst B) enforces a per-client token-bucket
// quota, answering 429 with a Retry-After header once a client (identified
// by X-API-Key, else remote address) exhausts its bucket.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and flushing the persistent cache before exiting; per-request
// deadlines reach the engine's probe loops, so expired requests stop
// working instead of leaking scans.
//
// Usage:
//
//	kbqa-server -addr :8080 -flavor freebase -timeout 2s -cache 4096 \
//	    -cache-dir /var/lib/kbqa/cache -cache-ttl 1h -warm 256 \
//	    -rate-limit 50 -rate-burst 100
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/kbqa"
)

// maxBatchSize caps one /batch request; bigger workloads should page.
const maxBatchSize = 256

// maxBatchBodyBytes bounds the /batch request body before JSON decoding,
// so an oversized payload is rejected instead of buffered into memory.
const maxBatchBodyBytes = 1 << 20

// maxTopK caps client-requested interpretation counts.
const maxTopK = 32

type server struct {
	sys   *kbqa.System
	srv   *kbqa.Server
	log   *kbqa.Logger // nil discards
	start time.Time
	ready atomic.Bool // set once the boot sequence (replay, warm) completes
}

func newServer(sys *kbqa.System, o kbqa.ServerOptions) (*server, error) {
	srv, err := sys.Server(o)
	if err != nil {
		return nil, err
	}
	return &server{sys: sys, srv: srv, log: o.Logger, start: time.Now()}, nil
}

type askResponse struct {
	Question        string                `json:"question"`
	Answered        bool                  `json:"answered"`
	Answer          string                `json:"answer,omitempty"`
	Values          []string              `json:"values,omitempty"`
	Predicate       string                `json:"predicate,omitempty"`
	Template        string                `json:"template,omitempty"`
	Steps           []kbqa.Step           `json:"steps,omitempty"`
	Variant         *kbqa.VariantAnswer   `json:"variant,omitempty"`
	Interpretations []kbqa.Interpretation `json:"interpretations,omitempty"`
	// TraceID echoes the request trace (also the X-Kbqa-Trace header);
	// empty when tracing is off.
	TraceID string `json:"trace_id,omitempty"`
	// Timings attributes the latency of the computation that produced the
	// result; a cache hit reports the original computation's.
	Timings   *kbqa.QueryTimings `json:"timings,omitempty"`
	Error     string             `json:"error,omitempty"`
	ErrorCode string             `json:"error_code,omitempty"`
}

// toAskResponse renders one Query outcome: a Result when err is nil, the
// typed failure otherwise.
func toAskResponse(q string, res *kbqa.Result, err error) askResponse {
	if err != nil {
		return askResponse{Question: q, Error: err.Error(), ErrorCode: kbqa.ErrorCode(err)}
	}
	resp := askResponse{Question: q, Answered: true, Interpretations: res.Interpretations, TraceID: res.TraceID}
	tm := res.Timings
	resp.Timings = &tm
	if res.Answer != nil {
		resp.Answer = res.Answer.Value
		resp.Values = res.Answer.Values
		resp.Predicate = res.Answer.Predicate
		resp.Template = res.Answer.Template
		resp.Steps = res.Answer.Steps
	}
	if res.Variant != nil {
		resp.Variant = res.Variant
		resp.Answer = strings.Join(res.Variant.Entities, ", ")
	}
	return resp
}

// parseTopK reads a client topk value, clamped to [0, maxTopK]; empty
// keeps the library default.
func parseTopK(raw string) ([]kbqa.QueryOption, error) {
	if raw == "" {
		return nil, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 0 {
		return nil, fmt.Errorf("bad topk %q", raw)
	}
	if k > maxTopK {
		k = maxTopK
	}
	return []kbqa.QueryOption{kbqa.WithTopK(k)}, nil
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeJSONStatus(w, http.StatusBadRequest, askResponse{Error: `missing query parameter "q"`})
		return
	}
	opts, err := parseTopK(r.URL.Query().Get("topk"))
	if err != nil {
		s.writeJSONStatus(w, http.StatusBadRequest, askResponse{Question: q, Error: err.Error()})
		return
	}
	res, err := s.srv.Query(r.Context(), q, opts...)
	if err != nil {
		s.writeJSONStatus(w, errStatus(err), toAskResponse(q, nil, err))
		return
	}
	s.writeJSON(w, toAskResponse(q, res, nil))
}

type batchRequest struct {
	Questions []string `json:"questions"`
	// TopK bounds the per-question interpretation count (0 keeps the
	// library default).
	TopK int `json:"topk,omitempty"`
}

type batchResponse struct {
	Results []askResponse `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeJSONStatus(w, http.StatusMethodNotAllowed, askResponse{Error: "POST only"})
		return
	}
	var req batchRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.writeJSONStatus(w, http.StatusRequestEntityTooLarge,
				askResponse{Error: fmt.Sprintf("request body exceeds %d bytes", maxBatchBodyBytes)})
			return
		}
		s.writeJSONStatus(w, http.StatusBadRequest, askResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Questions) == 0 {
		s.writeJSONStatus(w, http.StatusBadRequest, askResponse{Error: `empty "questions"`})
		return
	}
	if len(req.Questions) > maxBatchSize {
		s.writeJSONStatus(w, http.StatusBadRequest,
			askResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Questions), maxBatchSize)})
		return
	}
	// One quota unit per question: a 256-question batch spends the same
	// budget as 256 /ask calls.
	if s.overQuota(w, r, len(req.Questions)) {
		return
	}
	var opts []kbqa.QueryOption
	if req.TopK > 0 {
		k := req.TopK
		if k > maxTopK {
			k = maxTopK
		}
		opts = append(opts, kbqa.WithTopK(k))
	}
	items := s.srv.QueryBatch(r.Context(), req.Questions, opts...)
	resp := batchResponse{Results: make([]askResponse, len(items))}
	var firstInfraErr error
	infraErrored := 0
	for i, it := range items {
		resp.Results[i] = toAskResponse(it.Question, it.Result, it.Err)
		if it.Err != nil && !kbqa.IsUnanswerable(it.Err) {
			infraErrored++
			if firstInfraErr == nil {
				firstInfraErr = it.Err
			}
		}
	}
	// A batch where every item died on a serving-layer error (shutdown,
	// saturation) should look unhealthy to status-code-based clients, the
	// same way /ask does; partial failures and unanswerable questions stay
	// 200 with per-item error codes.
	if infraErrored == len(items) {
		s.writeJSONStatus(w, errStatus(firstInfraErr), resp)
		return
	}
	s.writeJSON(w, resp)
}

// handleMetrics serves the JSON snapshot by default and the Prometheus
// text exposition when asked via ?format=prometheus or an Accept header
// preferring text/plain.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	if format == "prometheus" || (format == "" && strings.Contains(accept, "text/plain")) {
		w.Header().Set("Content-Type", kbqa.PrometheusContentType)
		if err := s.srv.WriteMetricsPrometheus(w); err != nil {
			s.log.Error("write prometheus metrics", kbqa.LogF("error", err))
		}
		return
	}
	s.writeJSON(w, s.srv.Metrics())
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.sys.Stats())
}

// clientKey identifies the caller for rate limiting: the X-API-Key header
// when present (keyed quotas shared across a client's machines), else the
// remote host. The header is trusted as-is — there is no key registry —
// so against adversarial clients (who could mint a fresh key per request
// for a fresh bucket) the limiter is a fairness mechanism, not a security
// boundary; put an authenticating proxy in front for that.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// overQuota charges n quota units to the request's client; when the quota
// is exhausted it writes the 429 + Retry-After refusal and reports true.
func (s *server) overQuota(w http.ResponseWriter, r *http.Request, n int) bool {
	ok, retry := s.srv.AllowN(clientKey(r), n)
	if ok {
		return false
	}
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSONStatus(w, http.StatusTooManyRequests,
		askResponse{Error: "rate limit exceeded", ErrorCode: "rate_limited"})
	return true
}

// limited wraps an answering handler with the per-client rate limit:
// over-quota requests are refused with 429 and a Retry-After header before
// they reach the serving pipeline. /batch charges per question inside its
// handler instead (batching must not amplify a client's quota 256×), and
// introspection endpoints (/metrics, /stats, /health) are never limited —
// an over-quota client must still be observable.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.overQuota(w, r, 1) {
			return
		}
		h(w, r)
	}
}

// statusRecorder captures the status a handler writes so the access log
// and trace can report it; 0 means the handler never called WriteHeader
// (an implicit 200).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

// traced wraps an answering handler with the request observability layer:
// when tracing is on, the request runs under a root span named name
// (method/path/client/question attributes, final status), the trace ID is
// echoed as X-Kbqa-Trace before the handler writes, and the trace finishes
// — and is retained if sampled or slow — when the handler returns. Every
// request is also access-logged with request-scoped fields.
func (s *server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, trace := s.srv.Tracer().Start(r.Context(), name)
		if trace != nil {
			root := trace.Root()
			root.SetAttr("method", r.Method)
			root.SetAttr("path", r.URL.Path)
			root.SetAttr("client", clientKey(r))
			if q := r.URL.Query().Get("q"); q != "" {
				root.SetAttr("question", q)
			}
			w.Header().Set("X-Kbqa-Trace", trace.ID())
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		if trace != nil {
			trace.Root().SetInt("status", int64(status))
			trace.Finish()
		}
		if s.log.Enabled(kbqa.LogInfo) {
			s.log.Info("request",
				kbqa.LogF("method", r.Method), kbqa.LogF("path", r.URL.Path),
				kbqa.LogF("status", status),
				kbqa.LogF("duration_ms", float64(time.Since(start))/float64(time.Millisecond)),
				kbqa.LogF("client", clientKey(r)),
				kbqa.LogF("generation", s.srv.Generation()),
				kbqa.LogF("trace_id", trace.ID()))
		}
	}
}

// healthResponse is the /healthz and /readyz body.
type healthResponse struct {
	Status        string  `json:"status"`
	Generation    uint64  `json:"generation"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *server) health(status string) healthResponse {
	return healthResponse{
		Status:        status,
		Generation:    s.srv.Generation(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
}

// handleHealthz is the liveness probe: the process is up and can marshal a
// response. It never reports anything but ok — readiness is /readyz's job.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.health("ok"))
}

// handleReadyz is the readiness probe: 503 until the boot sequence
// (persistent-cache replay, corpus warming) completes and the listener is
// about to accept traffic, 200 after. Load balancers gate on this so a
// warming server takes no traffic it would answer slowly.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.writeJSONStatus(w, http.StatusServiceUnavailable, s.health("starting"))
		return
	}
	s.writeJSON(w, s.health("ready"))
}

// tracesResponse is the /debug/traces body.
type tracesResponse struct {
	Count  int                  `json:"count"`
	Traces []kbqa.TraceSnapshot `json:"traces"`
}

// traceErrorResponse is the /debug/traces?id= miss body.
type traceErrorResponse struct {
	Error string `json:"error"`
}

// handleTraces serves the retained request traces, newest first. Empty
// (not an error) when tracing is off. With ?id=<trace id> it returns that
// single trace, or a 404 JSON body when the ring no longer holds it
// (never retained, or evicted since).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		snap, ok := s.srv.FindTrace(id)
		if !ok {
			s.writeJSONStatus(w, http.StatusNotFound,
				traceErrorResponse{Error: fmt.Sprintf("trace %q not found (not retained, or evicted from the ring)", id)})
			return
		}
		s.writeJSON(w, snap)
		return
	}
	traces := s.srv.Traces()
	if traces == nil {
		traces = []kbqa.TraceSnapshot{}
	}
	s.writeJSON(w, tracesResponse{Count: len(traces), Traces: traces})
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ask", s.traced("http.ask", s.limited(s.handleAsk)))
	mux.HandleFunc("/batch", s.traced("http.batch", s.handleBatch)) // charges per question, see overQuota
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	// Explicit pprof routes: the debug mux must work without importing
	// net/http/pprof's DefaultServeMux side effects.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// errStatus maps Query errors to HTTP statuses: typed unanswerable
// failures to 404, timeouts to 504, engine bugs to 500 (retrying
// re-triggers them), shutdown and other transient failures to 503.
func errStatus(err error) int {
	switch {
	case kbqa.IsUnanswerable(err):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, kbqa.ErrEnginePanic):
		return http.StatusInternalServerError
	default:
		return http.StatusServiceUnavailable
	}
}

func (s *server) writeJSON(w http.ResponseWriter, v interface{}) {
	s.writeJSONStatus(w, http.StatusOK, v)
}

func (s *server) writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encode response", kbqa.LogF("error", err))
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flavor := flag.String("flavor", "freebase", "knowledge base flavor")
	seed := flag.Int64("seed", 42, "generation seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request answer deadline (0 = none)")
	cacheEntries := flag.Int("cache", 0, "answer cache capacity (0 = default 4096, negative disables)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent answer cache (empty = memory only)")
	cacheTTL := flag.Duration("cache-ttl", 0, "answer cache entry time-to-live (0 = no expiry)")
	cacheSync := flag.Duration("cache-sync", time.Second, "persistent cache fsync period: answers are durable within this of being computed (0 = default 1s, negative = only at flush/shutdown)")
	warm := flag.Int("warm", 0, "warm the cache with N training-corpus questions at boot (0 = off)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained requests/second (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client burst allowance (0 = ceil of -rate-limit)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent engine calls (0 = 4×GOMAXPROCS)")
	shards := flag.Int("shards", 0, "RDF store subject-hash shards (0 = default, 1 = unsharded)")
	shardServers := flag.String("shard-servers", "", "comma-separated kbqa-shard addresses; when set, knowledge-base index reads are served remotely (every server must have loaded the same world)")
	shardReplicas := flag.Int("shard-replicas", 2, "replication factor of the shard placement")
	kbImage := flag.String("kb-image", "", "serve knowledge-base index reads from this memory-mapped snapshot image (must hold the world the other flags describe; exclusive with -shard-servers)")
	kbSave := flag.String("kb-save", "", "after building, write the knowledge base as a snapshot image to this path")
	traceSample := flag.Float64("trace-sample", 0, "probability [0,1] that a request trace is retained for /debug/traces")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "always capture and log traces of requests at or above this duration (0 = off)")
	traceBuffer := flag.Int("trace-buffer", 0, "retained trace ring size (0 = default 128)")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn, or error")
	flag.Parse()

	logger := kbqa.NewLogger(os.Stderr, kbqa.ParseLogLevel(*logLevel))
	fatal := func(msg string, fields ...kbqa.LogField) {
		logger.Error(msg, fields...)
		os.Exit(1)
	}

	logger.Info("building world", kbqa.LogF("flavor", *flavor), kbqa.LogF("seed", *seed))
	var serverList []string
	if *shardServers != "" {
		for _, a := range strings.Split(*shardServers, ",") {
			serverList = append(serverList, strings.TrimSpace(a))
		}
	}
	sys, err := kbqa.Build(kbqa.Options{Flavor: *flavor, Seed: *seed, Shards: *shards,
		ShardServers: serverList, ShardReplicas: *shardReplicas, KBImage: *kbImage})
	if err != nil {
		fatal("build world", kbqa.LogF("error", err))
	}
	defer sys.Close()
	if len(serverList) > 0 {
		logger.Info("distributed knowledge base", kbqa.LogF("servers", *shardServers),
			kbqa.LogF("replicas", *shardReplicas))
	}
	if *kbImage != "" {
		logger.Info("knowledge base memory-mapped", kbqa.LogF("image", *kbImage))
	}
	if *kbSave != "" {
		if err := sys.SaveKBImage(*kbSave); err != nil {
			fatal("save kb image", kbqa.LogF("path", *kbSave), kbqa.LogF("error", err))
		}
		logger.Info("kb image saved", kbqa.LogF("path", *kbSave))
	}
	st := sys.Stats()
	logger.Info("world ready", kbqa.LogF("templates", st.Templates), kbqa.LogF("predicates", st.Intents))

	s, err := newServer(sys, kbqa.ServerOptions{
		CacheEntries:       *cacheEntries,
		CacheDir:           *cacheDir,
		CacheTTL:           *cacheTTL,
		CacheSyncEvery:     *cacheSync,
		MaxConcurrent:      *maxConcurrent,
		Timeout:            *timeout,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		TraceSampleRate:    *traceSample,
		SlowQueryThreshold: *slowQuery,
		TraceBuffer:        *traceBuffer,
		Logger:             logger,
	})
	if err != nil {
		fatal("open serving runtime", kbqa.LogF("error", err))
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *cacheDir != "" {
		m := s.srv.Metrics()
		logger.Info("persistent cache replayed", kbqa.LogF("dir", *cacheDir),
			kbqa.LogF("entries", m.CacheEntries), kbqa.LogF("generation", m.Generation))
	}
	if *warm > 0 {
		if *cacheEntries < 0 {
			fatal("-warm needs a cache; remove -warm or enable caching (-cache >= 0)")
		}
		qs := sys.SampleQuestions(*warm)
		start := time.Now()
		// Under the signal context, SIGINT during a long warm aborts it
		// instead of being deferred until after.
		n := s.srv.WarmFromCorpus(ctx, qs)
		logger.Info("cache warmed", kbqa.LogF("warmed", n), kbqa.LogF("asked", len(qs)),
			kbqa.LogF("duration", time.Since(start).Round(time.Millisecond)))
		// Make the warm work durable now: a later startup failure
		// (port in use, say) must not discard it.
		if err := s.srv.Flush(); err != nil {
			logger.Warn("flush warmed cache", kbqa.LogF("error", err))
		}
	}
	// The boot sequence is done; flip /readyz before the listener starts
	// taking traffic.
	s.ready.Store(true)

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      s.mux(),
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", kbqa.LogF("addr", *addr))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Flush the cache (warm work included) before dying on a listen
		// failure — exiting on the spot would skip the graceful path below.
		s.srv.Close()
		fatal("serve", kbqa.LogF("error", err))
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	s.ready.Store(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", kbqa.LogF("error", err))
	}
	// Close drains in-flight queries, then flushes the persistent cache so
	// the next boot replays everything this process answered.
	if err := s.srv.Close(); err != nil {
		logger.Error("close answer cache", kbqa.LogF("error", err))
	}
	logger.Info("bye")
}
