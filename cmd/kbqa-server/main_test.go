package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/kbqa"
)

var (
	srvOnce sync.Once
	srv     *server
)

func testServer(t *testing.T) *server {
	t.Helper()
	srvOnce.Do(func() {
		sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 42, Scale: 12, PairsPerIntent: 12})
		if err != nil {
			panic(err)
		}
		srv, err = newServer(sys, kbqa.ServerOptions{})
		if err != nil {
			panic(err)
		}
	})
	return srv
}

func TestHandleAskAnswered(t *testing.T) {
	s := testServer(t)
	q := s.sys.SampleQuestions(1)[0]
	req := httptest.NewRequest(http.MethodGet, "/ask?q="+escapeQuery(q), nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Answered || resp.Answer == "" || resp.Predicate == "" {
		t.Fatalf("response = %+v", resp)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestHandleAskUnanswered(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/ask?q=what+is+the+meaning+of+life", nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Answered {
		t.Errorf("unanswerable question answered: %+v", resp)
	}
	if resp.Error == "" {
		t.Errorf("404 body carries no error: %+v", resp)
	}
}

func TestHandleAskMissingQuery(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/ask", nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st kbqa.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Templates == 0 || st.Entities == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func postBatch(t *testing.T, s *server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.handleBatch(rec, req)
	return rec
}

func TestHandleBatch(t *testing.T) {
	s := testServer(t)
	qs := s.sys.SampleQuestions(3)
	questions := append(qs, "what is the meaning of life")
	body, _ := json.Marshal(batchRequest{Questions: questions})
	rec := postBatch(t, s, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(questions) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(questions))
	}
	for i, r := range resp.Results {
		if r.Question != questions[i] {
			t.Errorf("result %d out of order: %q != %q", i, r.Question, questions[i])
		}
	}
	for _, r := range resp.Results[:len(qs)] {
		if !r.Answered || r.Answer == "" {
			t.Errorf("answerable question unanswered: %+v", r)
		}
	}
	if last := resp.Results[len(questions)-1]; last.Answered || last.Error == "" {
		t.Errorf("unanswerable slot = %+v", last)
	}
}

func TestHandleBatchRejectsBadRequests(t *testing.T) {
	s := testServer(t)
	if rec := postBatch(t, s, `{"questions": []}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", rec.Code)
	}
	if rec := postBatch(t, s, `{]`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status = %d, want 400", rec.Code)
	}
	big, _ := json.Marshal(batchRequest{Questions: make([]string, maxBatchSize+1)})
	if rec := postBatch(t, s, string(big)); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/batch", nil)
	rec := httptest.NewRecorder()
	s.handleBatch(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /batch: status = %d, want 405", rec.Code)
	}
	huge := `{"questions": ["` + strings.Repeat("x", maxBatchBodyBytes+1) + `"]}`
	if rec := postBatch(t, s, huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", rec.Code)
	}
}

func TestHandleMetrics(t *testing.T) {
	s := testServer(t)
	// Generate some traffic so counters are non-trivial.
	q := s.sys.SampleQuestions(1)[0]
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		s.handleAsk(rec, httptest.NewRequest(http.MethodGet, "/ask?q="+escapeQuery(q), nil))
	}
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var m kbqa.ServerMetrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 {
		t.Fatal("no served requests recorded")
	}
	if m.CacheHits+m.CacheMisses != m.Served {
		t.Errorf("hits(%d) + misses(%d) != served(%d)", m.CacheHits, m.CacheMisses, m.Served)
	}
	if m.Stages["total"].Count == 0 {
		t.Errorf("total-stage histogram empty: %+v", m.Stages)
	}
}

// TestBatchAllErroredMapsToErrStatus: a batch where every item failed on a
// serving-layer error must not report 200 to status-code-based clients.
func TestBatchAllErroredMapsToErrStatus(t *testing.T) {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 3, Scale: 8, PairsPerIntent: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(sys, kbqa.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.srv.Close() // draining server: every item gets ErrShuttingDown
	body, _ := json.Marshal(batchRequest{Questions: []string{"a", "b"}})
	rec := postBatch(t, s, string(body))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Error == "" {
			t.Errorf("slot %d carries no error: %+v", i, r)
		}
	}
}

// TestConcurrentMixedTraffic hammers /ask and /batch from 32 goroutines
// through the real mux (run with -race); afterwards the cache counters must
// be consistent: every served request recorded exactly one hit or miss.
func TestConcurrentMixedTraffic(t *testing.T) {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 7, Scale: 10, PairsPerIntent: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(sys, kbqa.ServerOptions{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	qs := sys.SampleQuestions(8)
	if len(qs) == 0 {
		t.Fatal("no sample questions")
	}
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if (g+i)%2 == 0 {
					q := qs[(g+i)%len(qs)]
					resp, err := http.Get(ts.URL + "/ask?q=" + escapeQuery(q))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("GET /ask?q=%s: status %d", q, resp.StatusCode)
						return
					}
				} else {
					body, _ := json.Marshal(batchRequest{Questions: qs[:4]})
					resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := s.srv.Metrics()
	if m.Served == 0 {
		t.Fatal("no traffic recorded")
	}
	if m.CacheHits+m.CacheMisses != m.Served {
		t.Errorf("hits(%d) + misses(%d) != served(%d)", m.CacheHits, m.CacheMisses, m.Served)
	}
	if m.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", m.InFlight)
	}
}

func escapeQuery(q string) string {
	out := make([]byte, 0, len(q))
	for i := 0; i < len(q); i++ {
		switch q[i] {
		case ' ':
			out = append(out, '+')
		case '?':
			out = append(out, "%3F"...)
		case '\'':
			out = append(out, "%27"...)
		default:
			out = append(out, q[i])
		}
	}
	return string(out)
}
