package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/kbqa"
)

var (
	srvOnce sync.Once
	srv     *server
)

func testServer(t *testing.T) *server {
	t.Helper()
	srvOnce.Do(func() {
		sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 42, Scale: 12, PairsPerIntent: 12})
		if err != nil {
			panic(err)
		}
		srv = &server{sys: sys}
	})
	return srv
}

func TestHandleAskAnswered(t *testing.T) {
	s := testServer(t)
	q := s.sys.SampleQuestions(1)[0]
	req := httptest.NewRequest(http.MethodGet, "/ask?q="+escapeQuery(q), nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Answered || resp.Answer == "" || resp.Predicate == "" {
		t.Fatalf("response = %+v", resp)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestHandleAskUnanswered(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/ask?q=what+is+the+meaning+of+life", nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Answered {
		t.Errorf("unanswerable question answered: %+v", resp)
	}
}

func TestHandleAskMissingQuery(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/ask", nil)
	rec := httptest.NewRecorder()
	s.handleAsk(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st kbqa.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Templates == 0 || st.Entities == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func escapeQuery(q string) string {
	out := make([]byte, 0, len(q))
	for i := 0; i < len(q); i++ {
		switch q[i] {
		case ' ':
			out = append(out, '+')
		case '?':
			out = append(out, "%3F"...)
		case '\'':
			out = append(out, "%27"...)
		default:
			out = append(out, q[i])
		}
	}
	return string(out)
}
