// Command kbqa-vet is the repo's static-analysis suite, run as a
// `go vet` tool:
//
//	go build -o kbqa-vet ./cmd/kbqa-vet
//	go vet -vettool=$PWD/kbqa-vet ./...
//
// It enforces the runtime's recorded invariants — context propagation,
// no blocking I/O under locks, span lifecycle, structured logging, and
// metric naming. See the README "Static analysis" section for the
// analyzer list and the //kbqa:nolint directive.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/kbqavet"
)

func main() {
	analysis.Main(kbqavet.Analyzers()...)
}
