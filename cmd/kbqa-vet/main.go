// Command kbqa-vet is the repo's static-analysis suite, run as a
// `go vet` tool:
//
//	go build -o kbqa-vet ./cmd/kbqa-vet
//	go vet -vettool=$PWD/kbqa-vet ./...
//
// It enforces the runtime's recorded invariants — context propagation,
// no blocking I/O under locks, resource and span lifecycle (mustclose,
// spanend), goroutine termination signals, package-wide lock ordering,
// error-sink hygiene, structured logging, and metric naming: nine
// analyzers sharing one call-graph facts layer. A //kbqa:nolint
// directive that suppresses nothing is itself reported. See the README
// "Static analysis" section for the analyzer table and the directive
// grammar.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/kbqavet"
)

func main() {
	analysis.Main(kbqavet.Analyzers()...)
}
