// Hybrid deployment (Sec 7.3.1, Table 11): KBQA first, a synonym-based
// engine as fallback. KBQA's refusals on non-factoid questions are exactly
// the hook a hybrid system needs — composing it with any baseline improves
// that baseline.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The built-in baselines are the paper's comparison systems,
	// reimplemented over the same knowledge base.
	synonym, err := sys.BuiltinBaseline("synonym")
	if err != nil {
		log.Fatal(err)
	}
	hybrid := sys.Fallback(synonym)

	questions := sys.SampleQuestions(12)
	kbqaOnly, synOnly, both := 0, 0, 0
	for _, q := range questions {
		_, kOK := sys.Ask(q)
		_, sOK := synonym(q)
		ans, hOK := hybrid(q)
		switch {
		case kOK && sOK:
			both++
		case kOK:
			kbqaOnly++
		case sOK:
			synOnly++
		}
		if hOK {
			src := "KBQA"
			if !kOK {
				src = "synonym fallback"
			}
			fmt.Printf("%-60s -> %-20s (%s)\n", q, ans.Value, src)
		} else {
			fmt.Printf("%-60s -> unanswered\n", q)
		}
	}
	fmt.Printf("\ncoverage: KBQA-only %d, synonym-only %d, both %d of %d questions\n",
		kbqaOnly, synOnly, both, len(questions))
	fmt.Println("the hybrid answers the union — strictly at least as many as either system alone")
}
