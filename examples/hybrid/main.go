// Hybrid deployment (Sec 7.3.1, Table 11): KBQA first, a synonym-based
// engine as fallback, composed with Chain over the Answerer interface.
// KBQA's typed refusals on non-factoid questions are exactly the hook a
// hybrid system needs — the chain falls through on unanswerable errors
// and aborts on context errors, so a timed-out primary never burns the
// remaining budget on fallbacks.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "dbpedia", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The built-in baselines are the paper's comparison systems,
	// reimplemented over the same knowledge base and lifted into the
	// Answerer contract.
	synonym, err := sys.Baseline("synonym")
	if err != nil {
		log.Fatal(err)
	}
	hybrid := kbqa.Chain(sys, synonym)

	ctx := context.Background()
	questions := sys.SampleQuestions(12)
	kbqaOnly, synOnly, both := 0, 0, 0
	for _, q := range questions {
		_, kErr := sys.Query(ctx, q)
		_, sErr := synonym.Query(ctx, q)
		res, hErr := hybrid.Query(ctx, q)
		switch {
		case kErr == nil && sErr == nil:
			both++
		case kErr == nil:
			kbqaOnly++
		case sErr == nil:
			synOnly++
		}
		if hErr == nil {
			src := "KBQA"
			if kErr != nil {
				src = "synonym fallback"
			}
			fmt.Printf("%-60s -> %-20s (%s)\n", q, res.Answer.Value, src)
		} else {
			fmt.Printf("%-60s -> unanswered [%s]\n", q, kbqa.ErrorCode(hErr))
		}
	}
	fmt.Printf("\ncoverage: KBQA-only %d, synonym-only %d, both %d of %d questions\n",
		kbqaOnly, synOnly, both, len(questions))
	fmt.Println("the hybrid answers the union — strictly at least as many as either system alone")
}
