// Quickstart: build a trained KBQA system over the synthetic Freebase
// analogue and answer a handful of binary factoid questions through the
// unified Query API, inspecting the ranked interpretations behind each
// answer and the typed error classifying each refusal.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kbqa"
)

func main() {
	// Build generates a knowledge base and QA corpus, extracts
	// question-entity-value observations, and learns P(p|t) with EM —
	// the full offline procedure of the paper.
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("trained over %s: %d entities, %d triples, %d templates -> %d predicates\n\n",
		st.Flavor, st.Entities, st.Triples, st.Templates, st.Intents)

	// Ask the paper's flavour of questions. SampleQuestions draws from the
	// corpus so the demo works for any seed.
	ctx := context.Background()
	for _, q := range sys.SampleQuestions(8) {
		res, err := sys.Query(ctx, q, kbqa.WithTopK(3))
		if err != nil {
			fmt.Printf("Q: %-60s -> (no answer: %s)\n", q, kbqa.ErrorCode(err))
			continue
		}
		ans := res.Answer
		fmt.Printf("Q: %-60s\n   A: %-24s via %-28s template %q\n",
			q, ans.Value, ans.Predicate, ans.Template)
		// The engine ranks every (entity, template, predicate)
		// interpretation it scored; the answer is the argmax, but the
		// runners-up show what the question was almost read as.
		for i, in := range res.Interpretations[1:] {
			fmt.Printf("      alt %d: %-28s score %.4f\n", i+2, in.Predicate, in.Score)
		}
	}

	// An unanswerable question comes back as a typed error rather than a
	// guess — that refusal is what gives KBQA its precision, and the
	// error code tells a hybrid deployment *why* (no entity? no learned
	// template? no grounding?).
	if _, err := sys.Query(ctx, "Why is the sky blue?"); err != nil {
		fmt.Printf("\n\"Why is the sky blue?\" -> refused with error code %q\n", kbqa.ErrorCode(err))
	}
}
