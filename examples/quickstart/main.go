// Quickstart: build a trained KBQA system over the synthetic Freebase
// analogue and answer a handful of binary factoid questions.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/kbqa"
)

func main() {
	// Build generates a knowledge base and QA corpus, extracts
	// question-entity-value observations, and learns P(p|t) with EM —
	// the full offline procedure of the paper.
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("trained over %s: %d entities, %d triples, %d templates -> %d predicates\n\n",
		st.Flavor, st.Entities, st.Triples, st.Templates, st.Intents)

	// Ask the paper's flavour of questions. SampleQuestions draws from the
	// corpus so the demo works for any seed.
	for _, q := range sys.SampleQuestions(8) {
		ans, ok := sys.Ask(q)
		if !ok {
			fmt.Printf("Q: %-60s -> (no answer)\n", q)
			continue
		}
		fmt.Printf("Q: %-60s\n   A: %-24s via %-28s template %q\n",
			q, ans.Value, ans.Predicate, ans.Template)
	}

	// An unanswerable question comes back ok=false rather than a guess —
	// that refusal is what gives KBQA its precision.
	if _, ok := sys.Ask("Why is the sky blue?"); !ok {
		fmt.Println("\n\"Why is the sky blue?\" -> correctly refused (not a factoid question)")
	}
}
