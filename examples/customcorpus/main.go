// Custom corpus training: the offline learning pipeline applied to
// caller-supplied QA pairs. This is how a downstream user adapts the
// library to their own community-QA data: keep the knowledge base, swap
// the corpus, relearn P(p|t). The corpus here is built noise-free
// (Noise(0)) — expressible since the Options zero-value fix — and the
// model swap behind Learn/LoadModel is atomic, so retraining is safe even
// while queries are in flight.
//
// Run with:
//
//	go run ./examples/customcorpus
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{
		Flavor: "dbpedia", Seed: 11, Scale: 20, PairsPerIntent: 20,
		NoiseRate: kbqa.Noise(0), // a clean corpus, not the 0.15 default
	})
	if err != nil {
		log.Fatal(err)
	}
	before := sys.Stats()

	// Pretend this came from your own QA site: we reuse half of the
	// synthetic corpus as the "custom" data. Each entry is a raw question
	// and a free-text answer somewhere inside which the value occurs —
	// entity-value extraction and EM do the rest.
	custom := sys.TrainingCorpus()
	custom = custom[:len(custom)/2]
	sys.Learn(custom)
	after := sys.Stats()

	fmt.Printf("relearned from %d custom pairs: templates %d -> %d\n",
		len(custom), before.Templates, after.Templates)

	// Models persist with gob: save, reload, still answering.
	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	if err := sys.LoadModel(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model round-tripped through %d bytes of gob\n", size)

	ctx := context.Background()
	answered := 0
	qs := sys.SampleQuestions(10)
	for _, q := range qs {
		if res, err := sys.Query(ctx, q); err == nil {
			answered++
			fmt.Printf("%-60s -> %s\n", q, res.Answer.Value)
		}
	}
	fmt.Printf("answered %d/%d sampled questions after retraining\n", answered, len(qs))
}
