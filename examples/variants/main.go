// BFQ variants (the paper's introduction): once binary factoid questions
// are answerable, ranking, comparison and listing questions follow for
// free — the variant engine grounds the comparative/superlative phrase in
// a predicate through the *learned* templates and aggregates over V(e,p).
//
// Run with:
//
//	go run ./examples/variants
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	questions := []string{
		"Which city has the 3rd largest population?",
		"Which city has the smallest population?",
		"List cities ordered by population?",
		"Which mountain has the highest elevation?",
	}
	for _, q := range questions {
		ans, ok := sys.AskVariant(q)
		fmt.Printf("Q: %s\n", q)
		if !ok {
			fmt.Println("   (not a recognizable variant)")
			continue
		}
		switch ans.Kind {
		case "listing":
			fmt.Printf("   [%s over %s]\n", ans.Kind, ans.Predicate)
			for i := range ans.Entities {
				fmt.Printf("   %2d. %-24s %s\n", i+1, ans.Entities[i], ans.Values[i])
			}
		default:
			fmt.Printf("   A: %s (%s; %s = %s)\n",
				strings.Join(ans.Entities, ", "), ans.Kind, ans.Predicate, strings.Join(ans.Values, ", "))
		}
		fmt.Println()
	}

	// Comparison needs two concrete entities: take the top two cities from
	// the listing answer.
	if list, ok := sys.AskVariant("list cities ordered by population?"); ok && len(list.Entities) >= 2 {
		big, small := list.Entities[0], list.Entities[len(list.Entities)-1]
		q := fmt.Sprintf("Which city has more people, %s or %s?", big, small)
		if ans, ok := sys.AskVariant(q); ok {
			fmt.Printf("Q: %s\n   A: %s (population %s)\n", q, ans.Entities[0], ans.Values[0])
		}
	}
}
