// BFQ variants (the paper's introduction): once binary factoid questions
// are answerable, ranking, comparison and listing questions follow for
// free — the variant engine grounds the comparative/superlative phrase in
// a predicate through the *learned* templates and aggregates over V(e,p).
// Query auto-routes them: no separate entry point needed.
//
// Run with:
//
//	go run ./examples/variants
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	questions := []string{
		"Which city has the 3rd largest population?",
		"Which city has the smallest population?",
		"List cities ordered by population?",
		"Which mountain has the highest elevation?",
	}
	for _, q := range questions {
		res, err := sys.Query(ctx, q)
		fmt.Printf("Q: %s\n", q)
		if err != nil {
			fmt.Printf("   (not answerable: %s)\n", kbqa.ErrorCode(err))
			continue
		}
		ans := res.Variant
		if ans == nil {
			// Query routed it through the BFQ pipeline instead.
			fmt.Printf("   A: %s (BFQ)\n", res.Answer.Value)
			continue
		}
		switch ans.Kind {
		case "listing":
			fmt.Printf("   [%s over %s]\n", ans.Kind, ans.Predicate)
			for i := range ans.Entities {
				fmt.Printf("   %2d. %-24s %s\n", i+1, ans.Entities[i], ans.Values[i])
			}
		default:
			fmt.Printf("   A: %s (%s; %s = %s)\n",
				strings.Join(ans.Entities, ", "), ans.Kind, ans.Predicate, strings.Join(ans.Values, ", "))
		}
		fmt.Println()
	}

	// Comparison needs two concrete entities: take the top two cities from
	// the listing answer.
	if list, err := sys.Query(ctx, "list cities ordered by population?"); err == nil &&
		list.Variant != nil && len(list.Variant.Entities) >= 2 {
		ents := list.Variant.Entities
		big, small := ents[0], ents[len(ents)-1]
		q := fmt.Sprintf("Which city has more people, %s or %s?", big, small)
		if res, err := sys.Query(ctx, q); err == nil && res.Variant != nil {
			fmt.Printf("Q: %s\n   A: %s (population %s)\n", q, res.Variant.Entities[0], res.Variant.Values[0])
		}
	}
}
