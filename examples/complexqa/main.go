// Complex question answering: the divide-and-conquer pipeline of Sec 5.
// Questions like "When was X's wife born?" are decomposed into a sequence
// of binary factoid questions by the dynamic program of Algorithm 2, each
// hop answered with the probabilistic inference of Sec 3.
//
// Run with:
//
//	go run ./examples/complexqa
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// ComplexQuestions composes two-hop questions over the knowledge base
	// together with their gold answers, in the style of the paper's
	// Table 15 ("How many people live in the capital of Japan?").
	right, total := 0, 0
	for _, cq := range sys.ComplexQuestions(7, 8) {
		total++
		fmt.Printf("Q: %s\n", cq.Q)
		ans, ok := sys.Ask(cq.Q)
		if !ok {
			fmt.Println("   (no answer)")
			continue
		}
		for i, st := range ans.Steps {
			fmt.Printf("   step %d: %-46q -> %s  [%s]\n", i+1, st.Question, st.Value, st.Predicate)
		}
		verdict := "WRONG"
		for _, g := range cq.GoldAnswers {
			if g == ans.Value || contains(ans.Values, g) {
				verdict = "RIGHT"
				right++
				break
			}
		}
		fmt.Printf("   answer: %s (%s; gold: %s)\n\n", ans.Value, verdict, strings.Join(cq.GoldAnswers, " | "))
	}
	fmt.Printf("complex questions answered correctly: %d/%d\n", right, total)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
