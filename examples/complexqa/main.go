// Complex question answering: the divide-and-conquer pipeline of Sec 5.
// Questions like "When was X's wife born?" are decomposed into a sequence
// of binary factoid questions by the dynamic program of Algorithm 2, each
// hop answered with the probabilistic inference of Sec 3. Query returns
// the per-hop execution trace and stage timings, and a deadline on the
// context stops a chain between hops instead of fanning out more work.
//
// Run with:
//
//	go run ./examples/complexqa
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/kbqa"
)

func main() {
	sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// ComplexQuestions composes two-hop questions over the knowledge base
	// together with their gold answers, in the style of the paper's
	// Table 15 ("How many people live in the capital of Japan?").
	ctx := context.Background()
	right, total := 0, 0
	for _, cq := range sys.ComplexQuestions(7, 8) {
		total++
		fmt.Printf("Q: %s\n", cq.Q)
		// Multi-hop execution fans out over intermediate values; the
		// per-question deadline bounds the whole chain.
		res, err := sys.Query(ctx, cq.Q, kbqa.WithTimeout(5*time.Second))
		if err != nil {
			fmt.Printf("   (no answer: %s)\n", kbqa.ErrorCode(err))
			continue
		}
		ans := res.Answer
		for i, st := range ans.Steps {
			fmt.Printf("   step %d: %-46q -> %s  [%s]\n", i+1, st.Question, st.Value, st.Predicate)
		}
		verdict := "WRONG"
		for _, g := range cq.GoldAnswers {
			if g == ans.Value || contains(ans.Values, g) {
				verdict = "RIGHT"
				right++
				break
			}
		}
		fmt.Printf("   answer: %s (%s; gold: %s; %v total)\n\n",
			ans.Value, verdict, strings.Join(cq.GoldAnswers, " | "), res.Timings.Total.Round(time.Microsecond))
	}
	fmt.Printf("complex questions answered correctly: %d/%d\n", right, total)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
