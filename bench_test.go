// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec 7), one bench per experiment, plus micro-benchmarks of the hot
// paths and the ablation benches called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/decompose"
	"repro/internal/eval"
	"repro/internal/expand"
	"repro/internal/infobox"
	"repro/internal/kbgen"
	"repro/internal/learn"
	"repro/internal/rdf"
	"repro/internal/text"
	"repro/kbqa"
)

var (
	suiteOnce sync.Once
	suite     *eval.Suite
)

// benchSuite builds the shared three-world suite once.
func benchSuite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = eval.NewSuite()
		// Pre-warm all worlds so per-bench numbers exclude training.
		for _, f := range []kbgen.Flavor{kbgen.KBA, kbgen.Freebase, kbgen.DBpedia} {
			suite.World(f)
		}
	})
	return suite
}

// ---------------------------------------------------------------------------
// One bench per table of the paper.
// ---------------------------------------------------------------------------

func BenchmarkTable04ValidK(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table4()
		if rows[0].Valid[0] == 0 {
			b.Fatal("degenerate valid(k)")
		}
	}
}

func BenchmarkTable05Benchmarks(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table5()) == 0 {
			b.Fatal("no benchmarks")
		}
	}
}

func BenchmarkTable06Choices(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Table6().TemplatesPerEntityQ <= 0 {
			b.Fatal("degenerate table 6")
		}
	}
}

func BenchmarkTable07QALD5(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table7()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable08QALD3(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table8()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable09QALD1(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table9()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable10WebQuestions(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table10()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable11Hybrid(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table11()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable12Coverage(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table12()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable13Precision(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table13()) != 2 {
			b.Fatal("want 2 rows")
		}
	}
}

func BenchmarkTable14Latency(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table14()) != 3 {
			b.Fatal("want 3 rows")
		}
	}
}

func BenchmarkTable15Complex(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table15()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable16Expansion(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Table16().PredsExpanded == 0 {
			b.Fatal("no expanded predicates")
		}
	}
}

func BenchmarkTable17Templates(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table17()) == 0 {
			b.Fatal("no templates")
		}
	}
}

func BenchmarkTable18ExpandedPredicates(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Table18()) == 0 {
			b.Fatal("no expanded predicates")
		}
	}
}

func BenchmarkEntityValueID(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.EntityValueID(50)
		if r.JointRight == 0 {
			b.Fatal("joint extraction degenerate")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths.
// ---------------------------------------------------------------------------

// BenchmarkOnlineAnswerBFQ is the per-question online inference (the
// paper's 79ms row scaled to the synthetic world).
func BenchmarkOnlineAnswerBFQ(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	qs := make([]string, 0, 64)
	for _, p := range w.Pairs {
		if !p.Noise {
			qs = append(qs, p.Q)
			if len(qs) == 64 {
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Engine.AnswerBFQ(qs[i%len(qs)])
	}
}

// BenchmarkOnlineAnswerComplex measures two-hop question answering
// including decomposition.
func BenchmarkOnlineAnswerComplex(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	cps := corpus.ComposeComplex(w.KB, 5, 16)
	if len(cps) == 0 {
		b.Skip("no complex questions")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Engine.Answer(cps[i%len(cps)].Q)
	}
}

// BenchmarkEM measures full EM training over the prebuilt observations.
func BenchmarkEM(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.DBpedia)
	learner := w.Learner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := learner.EM(w.Obs)
		if m.NumTemplates() == 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkObservationExtraction measures entity-value extraction +
// candidate building over 100 QA pairs.
func BenchmarkObservationExtraction(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.DBpedia)
	learner := w.Learner()
	qa := make([]learn.QA, 0, 100)
	for _, p := range w.Pairs[:100] {
		qa = append(qa, learn.QA{Q: p.Q, A: p.A})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		learner.BuildObservations(qa)
	}
}

// BenchmarkDecomposeDP measures Algorithm 2 on a two-hop question.
func BenchmarkDecomposeDP(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	cps := corpus.ComposeComplex(w.KB, 5, 4)
	if len(cps) == 0 {
		b.Skip("no complex questions")
	}
	q := cps[0].Q
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Engine.Answer(q)
	}
}

// BenchmarkExpandBFS measures the sequential k=3 scan+join expansion over
// the full KB (expand.Expand regardless of store layout, for comparability
// with earlier commits; the parallel path has BenchmarkExpandParallel).
func BenchmarkExpandBFS(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := expand.Expand(w.KB.Store, expand.Config{MaxLen: 3, EndFilter: w.KB.EndFilter, KeepAllLengths: true})
		if len(res.Triples) == 0 {
			b.Fatal("no triples")
		}
	}
}

// BenchmarkStoreLookups measures the three index access paths.
func BenchmarkStoreLookups(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	store := w.KB.Store
	ents := store.Entities()
	pop, _ := store.PredID("population")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ents[i%len(ents)]
		store.Objects(e, pop)
		store.OutDegree(e)
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md Sec 5).
// ---------------------------------------------------------------------------

// BenchmarkAblationEMvsCount compares EM against single-pass counting.
func BenchmarkAblationEMvsCount(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.DBpedia)
	learner := w.Learner()
	b.Run("em", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			learner.EM(w.Obs)
		}
	})
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			learn.CountEstimate(w.Obs)
		}
	})
}

// BenchmarkAblationRefinement compares observation building with and
// without answer-type refinement (Sec 4.1.1).
func BenchmarkAblationRefinement(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.DBpedia)
	qa := make([]learn.QA, 0, 200)
	for _, p := range w.Pairs[:200] {
		qa = append(qa, learn.QA{Q: p.Q, A: p.A})
	}
	b.Run("on", func(b *testing.B) {
		l := w.Learner()
		for i := 0; i < b.N; i++ {
			l.BuildObservations(qa)
		}
	})
	b.Run("off", func(b *testing.B) {
		l := w.Learner()
		l.Extractor.DisableRefinement = true
		for i := 0; i < b.N; i++ {
			l.BuildObservations(qa)
		}
	})
}

// BenchmarkAblationReductionOnS compares expansion from corpus entities
// only (the paper's optimization) against all entities.
func BenchmarkAblationReductionOnS(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	seen := make(map[rdf.ID]bool)
	var sources []rdf.ID
	for _, p := range w.Pairs {
		if !seen[p.GoldEntity] {
			seen[p.GoldEntity] = true
			sources = append(sources, p.GoldEntity)
		}
	}
	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			expand.Expand(w.KB.Store, expand.Config{MaxLen: 3, Sources: sources, EndFilter: w.KB.EndFilter, KeepAllLengths: true})
		}
	})
	b.Run("all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			expand.Expand(w.KB.Store, expand.Config{MaxLen: 3, EndFilter: w.KB.EndFilter, KeepAllLengths: true})
		}
	})
}

// BenchmarkAblationContext compares context-aware conceptualization with
// the prior-only variant.
func BenchmarkAblationContext(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	ctx := text.Tokenize("how many people are there in")
	b.Run("context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.KB.Taxonomy.Conceptualize("paris", ctx)
		}
	})
	b.Run("prior", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.KB.Taxonomy.Concepts("paris")
		}
	})
}

// BenchmarkAblationExpansionK sweeps the expansion length bound.
func BenchmarkAblationExpansionK(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	ib := infobox.Build(w.KB.Store, infobox.Config{Seed: 1})
	top := expand.TopEntitiesByFrequency(w.KB.Store, 100)
	for _, k := range []int{1, 2, 3, 4} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expand.ValidK(w.KB.Store, top, k, w.KB.EndFilter, ib.Has)
			}
		})
	}
}

// BenchmarkBaselineLatency isolates per-system answer latency (the raw
// material of Table 14).
func BenchmarkBaselineLatency(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.DBpedia)
	q := ""
	for _, p := range w.Pairs {
		if !p.Noise {
			q = p.Q
			break
		}
	}
	for _, name := range []string{"kbqa", "keyword", "synonym", "graph", "rule"} {
		sys := w.Systems[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys.Answer(q)
			}
		})
	}
}

// BenchmarkBootstrap measures BOA pattern learning (Table 12's baseline).
func BenchmarkBootstrap(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.Freebase)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := baseline.Bootstrap(w.KB.Store, w.WebDocs)
		if m.NumPatterns() == 0 {
			b.Fatal("no patterns")
		}
	}
}

// ---------------------------------------------------------------------------
// Serving-runtime benches (internal/serve behind kbqa.Server).
// ---------------------------------------------------------------------------

var (
	serveOnce sync.Once
	serveCold *kbqa.Server // caching disabled: every Ask pays the engine
	serveWarm *kbqa.Server // default cache, pre-warmed over serveQs
	serveQs   []string
)

// serveFixture builds one system and two serving runtimes around it.
func serveFixture(b *testing.B) {
	b.Helper()
	serveOnce.Do(func() {
		sys, err := kbqa.Build(kbqa.Options{Flavor: "freebase", Seed: 42})
		if err != nil {
			panic(err)
		}
		serveQs = sys.SampleQuestions(64)
		serveCold, err = sys.Server(kbqa.ServerOptions{CacheEntries: -1})
		if err != nil {
			panic(err)
		}
		serveWarm, err = sys.Server(kbqa.ServerOptions{})
		if err != nil {
			panic(err)
		}
		for _, q := range serveQs {
			serveWarm.Ask(context.Background(), q)
		}
	})
	if len(serveQs) == 0 {
		b.Skip("no sample questions")
	}
}

// BenchmarkServeCold is the uncached serving path: full pipeline plus one
// engine call per request.
func BenchmarkServeCold(b *testing.B) {
	serveFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveCold.Ask(ctx, serveQs[i%len(serveQs)])
	}
}

// BenchmarkServeWarmCache serves every request from the sharded LRU cache;
// the acceptance bar is ≥10× BenchmarkServeCold throughput.
func BenchmarkServeWarmCache(b *testing.B) {
	serveFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveWarm.Ask(ctx, serveQs[i%len(serveQs)])
	}
}

// BenchmarkBatchAsk measures the batch executor fanning 64 uncached
// questions across the worker pool (one op = one 64-question batch).
func BenchmarkBatchAsk(b *testing.B) {
	serveFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := serveCold.AskBatch(ctx, serveQs)
		if len(items) != len(serveQs) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkQueryTopK tracks the cost of interpretation ranking in the
// unified Query API: the engine surfaces the top-5 scored (entity,
// template, predicate) triples instead of discarding all but the argmax.
// Compare with BenchmarkServeCold (topK=0 equivalent path) to price the
// ranking itself.
func BenchmarkQueryTopK(b *testing.B) {
	serveFixture(b)
	ctx := context.Background()
	sys := serveCold.System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query(ctx, serveQs[i%len(serveQs)], kbqa.WithTopK(5), kbqa.WithoutVariants())
		if err == nil && len(res.Interpretations) == 0 {
			b.Fatal("no interpretations ranked")
		}
	}
}

// BenchmarkQueryServedTopK is BenchmarkQueryTopK through the serving
// pipeline's fingerprinted cache: repeats of a (question, topK) pair are
// resident after the first round.
func BenchmarkQueryServedTopK(b *testing.B) {
	serveFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveWarm.Query(ctx, serveQs[i%len(serveQs)], kbqa.WithTopK(5))
	}
}

// BenchmarkDecomposeStats measures fv/fo statistics construction.
func BenchmarkDecomposeStats(b *testing.B) {
	s := benchSuite(b)
	w := s.World(kbgen.DBpedia)
	qs := corpus.Questions(w.Pairs)
	oracle := func(toks []string, sp text.Span) bool {
		return len(w.KB.Store.EntitiesByLabel(text.Join(text.CutSpan(toks, sp)))) > 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decompose.BuildStats(qs, oracle)
	}
}

// ---------------------------------------------------------------------------
// Sharded-store benches (rdf.ShardedStore + expand.ExpandParallel).
// ---------------------------------------------------------------------------

var (
	shardOnce    sync.Once
	shardKB      *kbgen.KB
	shardFlat    *rdf.Store
	shardSharded *rdf.ShardedStore
)

// shardFixture generates one KB an order of magnitude larger than the eval
// worlds, so the k-round scan+join dominates and the per-round merge is
// amortized, then shards it. The flat store and the sharded store share
// node IDs, so both layouts answer identical queries.
func shardFixture(b *testing.B) {
	b.Helper()
	shardOnce.Do(func() {
		shardKB = kbgen.Generate(kbgen.Config{Seed: 9, Flavor: kbgen.Freebase, Scale: 150})
		shardFlat = shardKB.Store.(*rdf.Store)
		shardSharded = rdf.Shard(shardFlat, 8)
	})
}

// BenchmarkExpandParallel compares the sequential k=3 expansion against the
// one-worker-per-shard expansion across GOMAXPROCS settings. On a machine
// with >= 4 cores the procs=4 and procs=8 rows should run >= 2x faster than
// sequential; both paths produce identical results (asserted by
// TestExpandParallelMatchesSequential).
func BenchmarkExpandParallel(b *testing.B) {
	shardFixture(b)
	cfg := expand.Config{MaxLen: 3, EndFilter: shardKB.EndFilter, KeepAllLengths: true}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(expand.Expand(shardFlat, cfg).Triples) == 0 {
				b.Fatal("no triples")
			}
		}
	})
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=8/procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(expand.ExpandParallel(shardSharded, cfg).Triples) == 0 {
					b.Fatal("no triples")
				}
			}
		})
	}
}

// BenchmarkProbeSharded measures the online point-probe path V(e, p+) on
// both layouts under concurrent load: the store serves read-only probes
// from GOMAXPROCS goroutines, the contention pattern of the serving
// runtime's worker pool.
func BenchmarkProbeSharded(b *testing.B) {
	shardFixture(b)
	path, ok := shardFlat.ParsePath("marriage→person→name")
	if !ok {
		b.Fatal("expanded predicate missing")
	}
	ents := shardFlat.Entities()
	layouts := []struct {
		name string
		g    rdf.Graph
	}{
		{"flat", shardFlat},
		{"sharded", shardSharded},
	}
	for _, l := range layouts {
		b.Run(l.name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					e := ents[i%len(ents)]
					l.g.PathObjects(e, path)
					l.g.Objects(e, 0)
					i++
				}
			})
		})
	}
}

// BenchmarkLoadNTriples compares sequential parse+index against parse plus
// parallel per-shard index build on the same serialized KB.
func BenchmarkLoadNTriples(b *testing.B) {
	shardFixture(b)
	var buf bytes.Buffer
	if err := shardFlat.WriteNTriples(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rdf.ReadNTriples(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rdf.LoadNTriples(bytes.NewReader(data), 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}
